// Package graph provides the network substrate for the LOCAL model: simple
// connected graphs (no loops, no multi-edges, paper §2.1.1), generators for
// the families used in the experiments, traversal and distance utilities,
// the radius-t balls B_G(v,t) with the paper's frontier-edge exclusion, and
// the surgery operations (edge subdivision, disjoint union) used by the
// gluing construction in the proof of Theorem 1.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Graph is a simple undirected graph on nodes 0..N-1. The neighbor order of
// each node is the node's port numbering and is preserved by construction;
// algorithms that need local orientation (e.g. Cole–Vishkin on cycles) rely
// on generator-provided port consistency.
//
// A Graph is immutable after construction; surgery operations return new
// graphs.
type Graph struct {
	adj [][]int32
	m   int // number of edges

	// topo caches the CSR/reverse-port flattening (see Topology); it is
	// derived from adj, so immutability makes the cache sound.
	topoOnce sync.Once
	topo     *Topology
	topoErr  error
}

// Errors returned by the builder.
var (
	ErrSelfLoop  = errors.New("graph: self-loop not allowed in a simple graph")
	ErrMultiEdge = errors.New("graph: multi-edge not allowed in a simple graph")
	ErrRange     = errors.New("graph: node index out of range")
)

// Builder incrementally assembles a simple graph.
type Builder struct {
	n   int
	adj [][]int32
	set []map[int32]bool
	err error
}

// NewBuilder returns a builder for a graph on n nodes (initially no edges).
func NewBuilder(n int) *Builder {
	return &Builder{
		n:   n,
		adj: make([][]int32, n),
		set: make([]map[int32]bool, n),
	}
}

// AddEdge adds the undirected edge {u, v}. Errors (self-loop, multi-edge,
// out-of-range endpoints) are sticky and reported by Build.
func (b *Builder) AddEdge(u, v int) *Builder {
	if b.err != nil {
		return b
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("%w: edge {%d,%d} on %d nodes", ErrRange, u, v, b.n)
		return b
	}
	if u == v {
		b.err = fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
		return b
	}
	if b.set[u] == nil {
		b.set[u] = make(map[int32]bool)
	}
	if b.set[v] == nil {
		b.set[v] = make(map[int32]bool)
	}
	if b.set[u][int32(v)] {
		b.err = fmt.Errorf("%w: {%d,%d}", ErrMultiEdge, u, v)
		return b
	}
	b.set[u][int32(v)] = true
	b.set[v][int32(u)] = true
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	return b
}

// Build finalizes the graph, returning any accumulated error.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	m := 0
	for _, nb := range b.adj {
		m += len(nb)
	}
	return &Graph{adj: b.adj, m: m / 2}, nil
}

// MustBuild is Build that panics on error; intended for generators whose
// edge sets are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// Neighbors returns the neighbors of v in port order. The returned slice
// must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Topology returns the CSR-flattened adjacency plus the reverse-port
// table, computed on first use and cached for the graph's lifetime. All
// executions on the same graph share one Topology, which is what lets the
// LOCAL engine amortize delivery wiring across Monte-Carlo trials.
func (g *Graph) Topology() (*Topology, error) {
	g.topoOnce.Do(func() { g.topo, g.topoErr = buildTopology(g.adj) })
	return g.topo, g.topoErr
}

// Neighbor returns the neighbor of v at the given port.
func (g *Graph) Neighbor(v, port int) int { return int(g.adj[v][port]) }

// HasEdge reports whether the edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	// Scan the smaller adjacency list; graphs here are bounded-degree so
	// linear scans are cache-friendly and allocation-free.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if int(w) == b {
			return true
		}
	}
	return false
}

// Edges returns all edges as pairs (u, v) with u < v, in ascending order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int(w) > u {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	adj := make([][]int32, len(g.adj))
	for v, nb := range g.adj {
		adj[v] = append([]int32(nil), nb...)
	}
	return &Graph{adj: adj, m: g.m}
}

// DegreeHistogram returns a map degree -> count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, nb := range g.adj {
		h[len(nb)]++
	}
	return h
}

// String renders a compact description, e.g. "graph(n=5, m=5, Δ=2)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}

// DOT renders the graph in Graphviz DOT format, with optional node labels.
func (g *Graph) DOT(name string, label func(v int) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", name)
	for v := 0; v < g.N(); v++ {
		if label != nil {
			fmt.Fprintf(&sb, "  %d [label=%q];\n", v, label(v))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FromAdjacency builds a graph from explicit per-node adjacency lists,
// preserving the given port order exactly. It validates simplicity and
// symmetry (every directed entry must have a reverse entry).
func FromAdjacency(adj [][]int32) (*Graph, error) {
	n := len(adj)
	m := 0
	for v, nb := range adj {
		seen := make(map[int32]bool, len(nb))
		for _, w := range nb {
			if int(w) < 0 || int(w) >= n {
				return nil, fmt.Errorf("%w: node %d lists %d", ErrRange, v, w)
			}
			if int(w) == v {
				return nil, fmt.Errorf("%w: node %d", ErrSelfLoop, v)
			}
			if seen[w] {
				return nil, fmt.Errorf("%w: node %d lists %d twice", ErrMultiEdge, v, w)
			}
			seen[w] = true
			// Symmetry check.
			back := false
			for _, x := range adj[w] {
				if int(x) == v {
					back = true
					break
				}
			}
			if !back {
				return nil, fmt.Errorf("graph: asymmetric adjacency %d -> %d", v, w)
			}
			m++
		}
	}
	cp := make([][]int32, n)
	for v, nb := range adj {
		cp[v] = append([]int32(nil), nb...)
	}
	return &Graph{adj: cp, m: m / 2}, nil
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// sortedCopy returns the neighbors of v in ascending order (used by
// canonicalization, where port order must not matter).
func (g *Graph) sortedCopy(v int) []int32 {
	nb := append([]int32(nil), g.adj[v]...)
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	return nb
}
