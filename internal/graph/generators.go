package graph

import (
	"fmt"
)

// Cycle returns the cycle C_n for n >= 3. Ports are oriented consistently:
// at every node, port 0 is the clockwise successor and port 1 the
// predecessor, providing the "common sense of direction" assumed by the
// ring lower-bound discussion in the paper (§1.3) and used by Cole–Vishkin.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		succ := int32((v + 1) % n)
		pred := int32((v - 1 + n) % n)
		adj[v] = []int32{succ, pred}
	}
	return &Graph{adj: adj, m: n}
}

// Path returns the path P_n on n >= 1 nodes, 0 - 1 - ... - n-1.
func Path(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: path needs n >= 1, got %d", n))
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: star needs n >= 2, got %d", n))
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph. Node (r, c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows x cols torus (wrap-around grid). Both dimensions
// must be >= 3 to keep the graph simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs dims >= 3, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(at(r, c), at(r, (c+1)%cols))
			b.AddEdge(at(r, c), at((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// CompleteTree returns the complete rooted tree of the given arity and
// depth (depth 0 is a single node). Node 0 is the root.
func CompleteTree(arity, depth int) *Graph {
	if arity < 1 || depth < 0 {
		panic("graph: tree needs arity >= 1 and depth >= 0")
	}
	// Count nodes level by level.
	n, level := 1, 1
	for d := 0; d < depth; d++ {
		level *= arity
		n += level
	}
	b := NewBuilder(n)
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var nf []int
		for _, p := range frontier {
			for c := 0; c < arity; c++ {
				b.AddEdge(p, next)
				nf = append(nf, next)
				next++
			}
		}
		frontier = nf
	}
	return b.MustBuild()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range", d))
	}
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild()
}

// Caterpillar returns a path of spineLen nodes with legsPerNode pendant
// leaves attached to every spine node. Spine nodes are 0..spineLen-1.
func Caterpillar(spineLen, legsPerNode int) *Graph {
	if spineLen < 1 || legsPerNode < 0 {
		panic("graph: caterpillar needs spineLen >= 1, legsPerNode >= 0")
	}
	n := spineLen + spineLen*legsPerNode
	b := NewBuilder(n)
	for v := 0; v+1 < spineLen; v++ {
		b.AddEdge(v, v+1)
	}
	next := spineLen
	for v := 0; v < spineLen; v++ {
		for l := 0; l < legsPerNode; l++ {
			b.AddEdge(v, next)
			next++
		}
	}
	return b.MustBuild()
}

// Petersen returns the Petersen graph (10 nodes, 3-regular, girth 5).
func Petersen() *Graph {
	b := NewBuilder(10)
	for v := 0; v < 5; v++ {
		b.AddEdge(v, (v+1)%5)     // outer pentagon
		b.AddEdge(v, v+5)         // spokes
		b.AddEdge(v+5, (v+2)%5+5) // inner pentagram
	}
	return b.MustBuild()
}

// splitmix for generator randomness; kept local to avoid import cycles.
type genRNG uint64

func (r *genRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *genRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// RandomRegular returns a random d-regular simple graph on n nodes using
// the pairing model with restarts, or an error if n*d is odd or the
// parameters are infeasible. The result is deterministic in seed.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: d-regular needs 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	r := genRNG(seed)
	const maxRestarts = 2000
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryPairing(n, d, &r)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: pairing model failed to produce a simple %d-regular graph on %d nodes", d, n)
}

// tryPairing runs one round of the configuration model: n*d stubs are
// paired uniformly; the attempt fails if a loop or multi-edge appears.
func tryPairing(n, d int, r *genRNG) (*Graph, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	// Fisher–Yates shuffle, then pair consecutive stubs.
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	b := NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		if u == v {
			return nil, false
		}
		b.AddEdge(u, v)
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

// GNP returns an Erdős–Rényi G(n, p) graph, deterministic in seed. The
// graph may be disconnected; use Connected or ConnectedGNP when the LOCAL
// model's connectivity assumption matters.
func GNP(n int, p float64, seed uint64) *Graph {
	r := genRNG(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// ConnectedGNP retries G(n, p) with varying sub-seeds until the sample is
// connected, up to a bounded number of attempts.
func ConnectedGNP(n int, p float64, seed uint64) (*Graph, error) {
	for attempt := uint64(0); attempt < 500; attempt++ {
		g := GNP(n, p, seed+attempt*0x9e37)
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: G(%d,%v) produced no connected sample in 500 attempts", n, p)
}

// Lollipop returns a clique of size k attached to a path of length tail:
// a standard diameter/eccentricity stress shape.
func Lollipop(k, tail int) *Graph {
	if k < 1 || tail < 0 {
		panic("graph: lollipop needs k >= 1, tail >= 0")
	}
	b := NewBuilder(k + tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	prev := k - 1
	for i := 0; i < tail; i++ {
		b.AddEdge(prev, k+i)
		prev = k + i
	}
	return b.MustBuild()
}

// DoubleStar returns two star centers joined by an edge, with la and lb
// leaves respectively. Center a is node 0, center b is node 1.
func DoubleStar(la, lb int) *Graph {
	b := NewBuilder(2 + la + lb)
	b.AddEdge(0, 1)
	next := 2
	for i := 0; i < la; i++ {
		b.AddEdge(0, next)
		next++
	}
	for i := 0; i < lb; i++ {
		b.AddEdge(1, next)
		next++
	}
	return b.MustBuild()
}
