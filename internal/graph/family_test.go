package graph

import "testing"

// TestFamilyLookup pins the family registry: every advertised name
// builds, the sizes round-trip sensibly, and unknown names error
// instead of panicking — this is the validation surface POST /v1/runs
// leans on.
func TestFamilyLookup(t *testing.T) {
	for _, name := range Families() {
		n := 5
		g, err := Family(name, n)
		if err != nil {
			t.Fatalf("family %s: %v", name, err)
		}
		if g.N() < 1 {
			t.Fatalf("family %s built an empty graph", name)
		}
	}
	if _, err := Family("nope", 5); err == nil {
		t.Fatal("unknown family accepted")
	}
	// The two-parameter families build their square instances.
	g, err := Family("grid", 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("grid 4 has %d nodes, want 16", g.N())
	}
	// Petersen ignores n.
	p, err := Family("petersen", 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 10 {
		t.Fatalf("petersen has %d nodes, want 10", p.N())
	}
}
