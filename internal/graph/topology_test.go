package graph

import "testing"

// checkTopology cross-validates a topology against the adjacency API.
func checkTopology(t *testing.T, g *Graph) {
	t.Helper()
	topo, err := g.Topology()
	if err != nil {
		t.Fatalf("Topology: %v", err)
	}
	if topo.NumNodes() != g.N() || topo.NumSlots() != 2*g.M() {
		t.Fatalf("shape: %d nodes / %d slots, want %d / %d",
			topo.NumNodes(), topo.NumSlots(), g.N(), 2*g.M())
	}
	for v := 0; v < g.N(); v++ {
		if topo.Degree(v) != g.Degree(v) {
			t.Fatalf("node %d: degree %d, want %d", v, topo.Degree(v), g.Degree(v))
		}
		lo, hi := topo.Slots(v)
		for p, w := range g.Neighbors(v) {
			s := lo + p
			if s >= hi {
				t.Fatalf("node %d: slot range too small", v)
			}
			if topo.Nbrs[s] != w {
				t.Fatalf("node %d port %d: nbr %d, want %d", v, p, topo.Nbrs[s], w)
			}
			// The reverse slot must be w's directed edge back to v, and the
			// pairing must be involutive.
			r := topo.RevSlot[s]
			wlo, whi := topo.Slots(int(w))
			if int(r) < wlo || int(r) >= whi {
				t.Fatalf("node %d port %d: reverse slot %d outside node %d", v, p, r, w)
			}
			if topo.Nbrs[r] != int32(v) {
				t.Fatalf("node %d port %d: reverse edge points at %d", v, p, topo.Nbrs[r])
			}
			if topo.RevSlot[r] != int32(s) {
				t.Fatalf("node %d port %d: RevSlot not involutive", v, p)
			}
			// InPort must agree with a direct scan of w's port numbering.
			q := topo.InPort(v, p)
			if g.Neighbor(int(w), q) != v {
				t.Fatalf("node %d port %d: InPort %d does not map back", v, p, q)
			}
		}
	}
}

func TestTopologyFamilies(t *testing.T) {
	rr, err := RandomRegular(40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	gnp, err := ConnectedGNP(30, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"cycle", Cycle(9)},
		{"path", Path(7)},
		{"star", Star(6)},
		{"complete", Complete(5)},
		{"grid", Grid(4, 5)},
		{"torus", Torus(4, 4)},
		{"tree", CompleteTree(3, 3)},
		{"petersen", Petersen()},
		{"random-regular", rr},
		{"connected-gnp", gnp},
	} {
		t.Run(tc.name, func(t *testing.T) { checkTopology(t, tc.g) })
	}
}

func TestTopologyCached(t *testing.T) {
	g := Cycle(6)
	a, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Topology not cached: two calls returned distinct tables")
	}
}

func TestTopologyAsymmetricAdjacency(t *testing.T) {
	// Hand-rolled asymmetric adjacency (node 0 lists 1, not vice versa)
	// must be reported, not silently miswired.
	g := &Graph{adj: [][]int32{{1}, {}}, m: 1}
	if _, err := g.Topology(); err == nil {
		t.Fatal("asymmetric adjacency not detected")
	}
}

func TestTopologySingleNode(t *testing.T) {
	g := &Graph{adj: [][]int32{{}}}
	topo, err := g.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 1 || topo.NumSlots() != 0 {
		t.Fatalf("unexpected shape for K1: %d nodes, %d slots", topo.NumNodes(), topo.NumSlots())
	}
}
