package graph

import "fmt"

// Topology is the CSR-flattened form of a graph's port-numbered adjacency
// together with the reverse-edge table used by synchronous message
// delivery. Node v owns the directed slots Offsets[v]..Offsets[v+1]; slot
// Offsets[v]+p corresponds to v's port p.
//
// RevSlot is the delivery wiring of the LOCAL model: the message v sends
// on port p arrives at the neighbor across that port on the port
// identified by RevSlot. Concretely, RevSlot[Offsets[v]+p] is the slot of
// the reverse directed edge (w → v, where w = Nbrs[Offsets[v]+p]), so a
// round of delivery is one gather: recv[s] = send[RevSlot[s]].
//
// A Topology is immutable and shared; callers must not modify the slices.
type Topology struct {
	Offsets []int32 // len N()+1, cumulative degrees
	Nbrs    []int32 // len 2*M(), neighbors in port order
	RevSlot []int32 // len 2*M(), slot of the reverse directed edge
}

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.Offsets) - 1 }

// NumSlots returns the number of directed edge slots (2·M).
func (t *Topology) NumSlots() int { return len(t.Nbrs) }

// Degree returns the degree of node v.
func (t *Topology) Degree(v int) int { return int(t.Offsets[v+1] - t.Offsets[v]) }

// Slots returns the half-open directed-slot range [lo, hi) of node v.
func (t *Topology) Slots(v int) (lo, hi int) {
	return int(t.Offsets[v]), int(t.Offsets[v+1])
}

// InPort returns the port at which the neighbor across v's port p receives
// messages from v (the reverse-port table in port coordinates).
func (t *Topology) InPort(v, p int) int {
	s := t.RevSlot[int(t.Offsets[v])+p]
	w := t.Nbrs[int(t.Offsets[v])+p]
	return int(s - t.Offsets[w])
}

// topoEdge keys an undirected edge with ordered endpoints.
type topoEdge struct{ lo, hi int32 }

// buildTopology flattens adj into CSR form and pairs every directed edge
// with its reverse in one pass over the slots (O(n + m) expected time).
// Adjacency built by Builder or FromAdjacency is symmetric by
// construction; the error path guards hand-rolled graphs.
func buildTopology(adj [][]int32) (*Topology, error) {
	n := len(adj)
	offsets := make([]int32, n+1)
	total := 0
	for v, nb := range adj {
		offsets[v] = int32(total)
		total += len(nb)
	}
	offsets[n] = int32(total)

	nbrs := make([]int32, total)
	rev := make([]int32, total)
	// Pair the two directed copies of each undirected edge: the first
	// visit parks its slot in pending, the second wires both directions.
	pending := make(map[topoEdge]int32, total/2)
	for v, nb := range adj {
		base := offsets[v]
		for p, w := range nb {
			s := base + int32(p)
			nbrs[s] = w
			key := topoEdge{int32(v), w}
			if key.lo > key.hi {
				key.lo, key.hi = key.hi, key.lo
			}
			if other, ok := pending[key]; ok {
				rev[s] = other
				rev[other] = s
				delete(pending, key)
			} else {
				pending[key] = s
			}
		}
	}
	for key := range pending {
		return nil, fmt.Errorf("graph: asymmetric adjacency at edge {%d,%d}", key.lo, key.hi)
	}
	return &Topology{Offsets: offsets, Nbrs: nbrs, RevSlot: rev}, nil
}
