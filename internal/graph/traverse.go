package graph

// BFSFrom computes hop distances from source v; unreachable nodes get -1.
func (g *Graph) BFSFrom(v int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(v))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFSFrom(u)[v]
}

// Connected reports whether the graph is connected (the LOCAL model of the
// paper assumes connected networks; experiments on disjoint unions use
// ComponentCount explicitly).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	return g.ComponentCount() == 1
}

// Components returns, for each node, a component label in 0..k-1, plus the
// number of components k. Labels follow discovery order from node 0.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	k := 0
	for v := 0; v < g.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = k
		queue := []int32{int32(v)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if comp[w] == -1 {
					comp[w] = k
					queue = append(queue, w)
				}
			}
		}
		k++
	}
	return comp, k
}

// ComponentCount returns the number of connected components.
func (g *Graph) ComponentCount() int {
	_, k := g.Components()
	return k
}

// Eccentricity returns the maximum distance from v to any reachable node.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFSFrom(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter by BFS from every node. For
// disconnected graphs it returns the largest finite eccentricity.
// O(n·(n+m)); intended for the moderate sizes used in experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// NodesWithin returns all nodes at distance <= t from v, in BFS order, along
// with their distances.
func (g *Graph) NodesWithin(v, t int) ([]int, []int) {
	var nodes, dists []int
	dist := map[int]int{v: 0}
	queue := []int{v}
	nodes = append(nodes, v)
	dists = append(dists, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == t {
			continue
		}
		for _, w := range g.adj[u] {
			if _, seen := dist[int(w)]; !seen {
				dist[int(w)] = dist[u] + 1
				nodes = append(nodes, int(w))
				dists = append(dists, dist[u]+1)
				queue = append(queue, int(w))
			}
		}
	}
	return nodes, dists
}

// ScatteredSet greedily selects nodes pairwise at distance >= sep,
// returning at most want of them (want <= 0 means as many as possible).
// The proof of Theorem 1 needs a set S of µ vertices pairwise at distance
// at least 2(t+t′); such a set exists whenever the diameter is at least
// 2µ(t+t′) — see the D = 2µ(t+t′) bound in §3. The greedy sweep below
// walks a BFS order from an endpoint of a diameter path, which realizes
// that existence proof constructively on every graph.
func (g *Graph) ScatteredSet(sep, want int) []int {
	if g.N() == 0 {
		return nil
	}
	// Start from a far-out node (endpoint of an approximate diameter path)
	// so that long graphs yield many scattered nodes.
	far := 0
	d0 := g.BFSFrom(0)
	for v, d := range d0 {
		if d > d0[far] {
			far = v
		}
	}
	order := bfsOrder(g, far)
	var chosen []int
	// blocked[v] true when v is within sep-1 of a chosen node.
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		chosen = append(chosen, v)
		if want > 0 && len(chosen) >= want {
			break
		}
		nodes, _ := g.NodesWithin(v, sep-1)
		for _, u := range nodes {
			blocked[u] = true
		}
	}
	return chosen
}

// bfsOrder returns all nodes reachable from v in BFS discovery order.
func bfsOrder(g *Graph, v int) []int {
	seen := make([]bool, g.N())
	seen[v] = true
	order := []int{v}
	for i := 0; i < len(order); i++ {
		for _, w := range g.adj[order[i]] {
			if !seen[w] {
				seen[w] = true
				order = append(order, int(w))
			}
		}
	}
	return order
}

// PairwiseDistAtLeast verifies that every pair of the given nodes is at
// distance >= sep, returning the first violating pair if any.
func (g *Graph) PairwiseDistAtLeast(nodes []int, sep int) (ok bool, u, v int) {
	for i := 0; i < len(nodes); i++ {
		d := g.BFSFrom(nodes[i])
		for j := i + 1; j < len(nodes); j++ {
			if d[nodes[j]] != -1 && d[nodes[j]] < sep {
				return false, nodes[i], nodes[j]
			}
		}
	}
	return true, -1, -1
}
