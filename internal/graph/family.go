package graph

import (
	"fmt"
	"sort"
)

// familyBuilders maps the graph-family names the CLI and the serve
// control plane accept onto their generators. Families here take one
// size parameter n; two-parameter generators (Grid, Torus) are exposed
// as their square n×n instances, matching `rlnc graph`'s historical
// behavior, and Petersen ignores n.
var familyBuilders = map[string]func(n int) *Graph{
	"cycle":     Cycle,
	"path":      Path,
	"complete":  Complete,
	"star":      Star,
	"grid":      func(n int) *Graph { return Grid(n, n) },
	"torus":     func(n int) *Graph { return Torus(n, n) },
	"tree":      func(n int) *Graph { return CompleteTree(2, n) },
	"hypercube": Hypercube,
	"petersen":  func(int) *Graph { return Petersen() },
}

// Families returns the sorted family names Family accepts — the
// vocabulary `rlnc graph -family` and the serve layer's job validation
// share.
func Families() []string {
	names := make([]string, 0, len(familyBuilders))
	for name := range familyBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Family builds the named graph family at size n: the single lookup
// behind `rlnc graph -family` and `POST /v1/runs` algorithm jobs, so
// the CLI and the control plane cannot drift on what a family name
// means. Unknown names error; size validity is the generator's business
// (generators panic on nonsensical sizes, which job validation screens
// beforehand with its own bounds).
func Family(name string, n int) (*Graph, error) {
	build, ok := familyBuilders[name]
	if !ok {
		return nil, fmt.Errorf("graph: unknown family %q (have %v)", name, Families())
	}
	return build(n), nil
}
