package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Ball is the radius-t ball B_G(v,t) of the paper (§2.1.1): the subgraph of
// G induced by all nodes at distance at most t from v, *excluding the edges
// between nodes at distance exactly t* from v. The exclusion matters: it is
// what makes a t-round view collect exactly the information that can reach
// v in t rounds, and the legality of a ball must be preserved when the ball
// reappears inside a different host graph (§1.1).
type Ball struct {
	// G is the ball as a standalone graph on local indices 0..len(Nodes)-1.
	// Local index 0 is always the center. Port order of surviving edges
	// matches the host graph's port order.
	G *Graph
	// Nodes maps local index -> host-graph node.
	Nodes []int
	// Dist maps local index -> distance from the center in the host graph.
	Dist []int
	// Ports maps, in parallel with G's adjacency lists, each surviving
	// local edge to the port index it occupies at the host node:
	// Ports[i][j] is the host port of Nodes[i] for the edge to local
	// neighbor G.Neighbors(i)[j]. Algorithms whose outputs reference ports
	// (e.g. matchings) interpret them through this map.
	Ports [][]int
	// Radius is the t used for extraction.
	Radius int
}

// BallAround extracts B_G(v,t).
func (g *Graph) BallAround(v, t int) *Ball {
	nodes, dists := g.NodesWithin(v, t)
	local := make(map[int]int, len(nodes))
	for i, u := range nodes {
		local[u] = i
	}
	adj := make([][]int32, len(nodes))
	ports := make([][]int, len(nodes))
	m := 0
	for i, u := range nodes {
		for p, w := range g.adj[u] {
			j, in := local[int(w)]
			if !in {
				continue
			}
			// Frontier-edge exclusion: drop edges joining two nodes at
			// distance exactly t from the center.
			if dists[i] == t && dists[j] == t {
				continue
			}
			adj[i] = append(adj[i], int32(j))
			ports[i] = append(ports[i], p)
			m++
		}
	}
	return &Ball{
		G:      &Graph{adj: adj, m: m / 2},
		Nodes:  nodes,
		Dist:   dists,
		Ports:  ports,
		Radius: t,
	}
}

// Center returns the host-graph node at the center of the ball.
func (b *Ball) Center() int { return b.Nodes[0] }

// Size returns the number of nodes in the ball.
func (b *Ball) Size() int { return len(b.Nodes) }

// LocalIndex returns the ball-local index of a host node, or -1.
func (b *Ball) LocalIndex(hostNode int) int {
	for i, u := range b.Nodes {
		if u == hostNode {
			return i
		}
	}
	return -1
}

// maxCanonicalSize bounds the exact canonicalization search. Balls used
// for inventory enumeration (order-invariance machinery, Claim 2's count N)
// come from bounded-degree families with k <= 3 and small t, so this is
// ample; larger balls return an error rather than a wrong key.
const maxCanonicalSize = 12

// CanonicalKey returns a string that is equal for two balls exactly when
// there is an isomorphism between them that maps center to center and
// preserves the node labels produced by label (e.g. input strings, or ID
// order ranks). It performs an exact search over label/distance-consistent
// permutations; balls larger than an internal bound return an error.
func (b *Ball) CanonicalKey(label func(local int) string) (string, error) {
	n := b.Size()
	if n > maxCanonicalSize {
		return "", fmt.Errorf("graph: ball size %d exceeds canonicalization bound %d", n, maxCanonicalSize)
	}
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		if label != nil {
			labels[i] = label(i)
		}
	}
	// A candidate relabeling assigns canonical positions 0..n-1 to local
	// nodes; position 0 is forced to the center. We enumerate assignments
	// where position p can host any node whose (dist, degree, label) class
	// is still available, and keep the lexicographically smallest encoding.
	best := ""
	perm := make([]int, n)  // canonical position -> local node
	used := make([]bool, n) //
	perm[0] = 0
	used[0] = true
	var rec func(p int)
	encode := func() string {
		var sb strings.Builder
		inv := make([]int, n) // local -> canonical
		for p, l := range perm {
			inv[l] = p
		}
		for p := 0; p < n; p++ {
			l := perm[p]
			fmt.Fprintf(&sb, "%d:%d:%q:", b.Dist[l], b.G.Degree(l), labels[l])
			nb := make([]int, 0, b.G.Degree(l))
			for _, w := range b.G.Neighbors(l) {
				nb = append(nb, inv[w])
			}
			sort.Ints(nb)
			for _, x := range nb {
				fmt.Fprintf(&sb, "%d,", x)
			}
			sb.WriteByte(';')
		}
		return sb.String()
	}
	rec = func(p int) {
		if p == n {
			enc := encode()
			if best == "" || enc < best {
				best = enc
			}
			return
		}
		for l := 0; l < n; l++ {
			if used[l] {
				continue
			}
			used[l] = true
			perm[p] = l
			rec(p + 1)
			used[l] = false
		}
	}
	rec(1)
	return best, nil
}

// IsomorphicTo reports whether two balls admit a center-fixing,
// label-preserving isomorphism (via canonical keys).
func (b *Ball) IsomorphicTo(o *Ball, labelB, labelO func(local int) string) (bool, error) {
	kb, err := b.CanonicalKey(labelB)
	if err != nil {
		return false, err
	}
	ko, err := o.CanonicalKey(labelO)
	if err != nil {
		return false, err
	}
	return kb == ko, nil
}
