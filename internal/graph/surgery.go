package graph

import "fmt"

// SubdivisionResult records the outcome of subdividing one edge twice, the
// operation used by the gluing construction in the proof of Theorem 1:
// "we subdivide each edge e_i twice, by inserting two nodes v_i and w_i".
type SubdivisionResult struct {
	G *Graph
	// VNode and WNode are the indices of the two inserted nodes: the edge
	// {u, z} becomes the path u - VNode - WNode - z.
	VNode, WNode int
}

// SubdivideTwice replaces the edge {u, z} with the path u - v - w - z,
// where v and w are two fresh nodes appended after the existing ones.
// Degrees of u and z are unchanged; v and w have degree 2 until the gluing
// step adds one inter-copy edge each (hence the paper's requirement k > 2).
func (g *Graph) SubdivideTwice(u, z int) (*SubdivisionResult, error) {
	if !g.HasEdge(u, z) {
		return nil, fmt.Errorf("graph: no edge {%d,%d} to subdivide", u, z)
	}
	n := g.N()
	vNode, wNode := n, n+1
	adj := make([][]int32, n+2)
	for x := 0; x < n; x++ {
		nb := make([]int32, 0, len(g.adj[x]))
		for _, y := range g.adj[x] {
			switch {
			case x == u && int(y) == z:
				nb = append(nb, int32(vNode)) // u now points to v in the same port slot
			case x == z && int(y) == u:
				nb = append(nb, int32(wNode)) // z now points to w in the same port slot
			default:
				nb = append(nb, y)
			}
		}
		adj[x] = nb
	}
	adj[vNode] = []int32{int32(u), int32(wNode)}
	adj[wNode] = []int32{int32(vNode), int32(z)}
	return &SubdivisionResult{
		G:     &Graph{adj: adj, m: g.m + 2},
		VNode: vNode,
		WNode: wNode,
	}, nil
}

// UnionResult records a disjoint union and the index offsets of each part.
type UnionResult struct {
	G *Graph
	// Offsets[i] is the index in G of node 0 of part i; part i's node v
	// becomes Offsets[i]+v.
	Offsets []int
}

// DisjointUnion places the given graphs side by side with no connecting
// edges. This realizes the instance union of Claim 3 (the relaxed variant
// of Theorem 1 on non-connected configurations).
func DisjointUnion(parts ...*Graph) *UnionResult {
	total := 0
	offsets := make([]int, len(parts))
	for i, p := range parts {
		offsets[i] = total
		total += p.N()
	}
	adj := make([][]int32, total)
	m := 0
	for i, p := range parts {
		off := offsets[i]
		for v := 0; v < p.N(); v++ {
			nb := make([]int32, len(p.adj[v]))
			for j, w := range p.adj[v] {
				nb[j] = w + int32(off)
			}
			adj[off+v] = nb
		}
		m += p.m
	}
	return &UnionResult{G: &Graph{adj: adj, m: m}, Offsets: offsets}
}

// WithExtraEdges returns a copy of g with the listed edges added; it
// errors on self-loops, duplicates, or edges already present.
func (g *Graph) WithExtraEdges(edges [][2]int) (*Graph, error) {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (all edges with both
// endpoints in keep), plus the local->original node mapping.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	local := make(map[int]int, len(keep))
	nodes := append([]int(nil), keep...)
	for i, v := range nodes {
		local[v] = i
	}
	adj := make([][]int32, len(nodes))
	m := 0
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			if j, ok := local[int(w)]; ok {
				adj[i] = append(adj[i], int32(j))
				m++
			}
		}
	}
	return &Graph{adj: adj, m: m / 2}, nodes
}
