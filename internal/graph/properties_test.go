package graph

import (
	"testing"
	"testing/quick"
)

func TestIsBipartite(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"even cycle", Cycle(8), true},
		{"odd cycle", Cycle(7), false},
		{"path", Path(9), true},
		{"tree", CompleteTree(3, 3), true},
		{"K4", Complete(4), false},
		{"grid", Grid(4, 5), true},
		{"petersen", Petersen(), false},
	}
	for _, tc := range cases {
		ok, side := tc.g.IsBipartite()
		if ok != tc.want {
			t.Errorf("%s: IsBipartite = %v, want %v", tc.name, ok, tc.want)
		}
		if ok {
			for _, e := range tc.g.Edges() {
				if side[e[0]] == side[e[1]] {
					t.Errorf("%s: witness puts edge {%d,%d} on one side", tc.name, e[0], e[1])
				}
			}
		}
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"C5", Cycle(5), 5},
		{"C8", Cycle(8), 8},
		{"K4", Complete(4), 3},
		{"path", Path(6), -1},
		{"tree", CompleteTree(2, 3), -1},
		{"petersen", Petersen(), 5},
		{"grid", Grid(3, 3), 4},
	}
	for _, tc := range cases {
		if got := tc.g.Girth(); got != tc.want {
			t.Errorf("%s: girth = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDegeneracyOrder(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"cycle", Cycle(9), 2},
		{"tree", CompleteTree(3, 3), 1},
		{"K5", Complete(5), 4},
		{"star", Star(8), 1},
	}
	for _, tc := range cases {
		d, order := tc.g.DegeneracyOrder()
		if d != tc.want {
			t.Errorf("%s: degeneracy = %d, want %d", tc.name, d, tc.want)
		}
		if len(order) != tc.g.N() {
			t.Fatalf("%s: order covers %d of %d nodes", tc.name, len(order), tc.g.N())
		}
		// Witness property: each node has at most d neighbors earlier in
		// the coloring order (greedy needs at most d+1 colors).
		pos := make([]int, tc.g.N())
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < tc.g.N(); v++ {
			earlier := 0
			for _, w := range tc.g.Neighbors(v) {
				if pos[w] < pos[v] {
					earlier++
				}
			}
			if earlier > d {
				t.Errorf("%s: node %d has %d earlier neighbors > degeneracy %d", tc.name, v, earlier, d)
			}
		}
	}
}

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K3", Complete(3), 1},
		{"K4", Complete(4), 4},
		{"C5", Cycle(5), 0},
		{"petersen", Petersen(), 0},
		{"grid", Grid(3, 3), 0},
	}
	for _, tc := range cases {
		if got := tc.g.TriangleCount(); got != tc.want {
			t.Errorf("%s: triangles = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// Property: bipartite iff no odd cycle is found by the exact girth
// parity... weaker but useful: even cycles are bipartite, odd are not.
func TestBipartiteCycleParityProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%40) + 3
		ok, _ := Cycle(n).IsBipartite()
		return ok == (n%2 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: girth of C_n equals n.
func TestGirthCycleProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%40) + 3
		return Cycle(n).Girth() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
