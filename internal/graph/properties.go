package graph

// IsBipartite reports whether the graph is 2-colorable, and returns a
// witness side assignment when it is (nil otherwise). BFS layering per
// component.
func (g *Graph) IsBipartite() (bool, []int) {
	n := g.N()
	side := make([]int, n)
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if side[w] == -1 {
					side[w] = 1 - side[u]
					queue = append(queue, w)
				} else if side[w] == side[u] {
					return false, nil
				}
			}
		}
	}
	return true, side
}

// Girth returns the length of a shortest cycle, or -1 for forests.
// BFS from every node; O(n·(n+m)), fine for experiment-scale graphs.
func (g *Graph) Girth() int {
	best := -1
	n := g.N()
	dist := make([]int, n)
	parent := make([]int32, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if dist[w] == -1 {
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				} else if w != parent[u] {
					// Cycle through s of length dist[u]+dist[w]+1.
					c := dist[u] + dist[w] + 1
					if best == -1 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// DegeneracyOrder returns the graph's degeneracy d and a coloring order
// (the reverse of the min-degree elimination order) in which every node
// has at most d neighbors among the EARLIER nodes — so greedy coloring
// along it uses at most d+1 colors.
func (g *Graph) DegeneracyOrder() (int, []int) {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	// Bucket queue over current degrees.
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order := make([]int, 0, n)
	degeneracy := 0
	for len(order) < n {
		// Find the smallest non-empty bucket.
		d := 0
		for ; d <= maxDeg; d++ {
			// Pop skipping stale entries.
			for len(buckets[d]) > 0 {
				v := buckets[d][len(buckets[d])-1]
				buckets[d] = buckets[d][:len(buckets[d])-1]
				if removed[v] || deg[v] != d {
					continue
				}
				if d > degeneracy {
					degeneracy = d
				}
				removed[v] = true
				order = append(order, v)
				for _, w := range g.adj[v] {
					if !removed[w] {
						deg[w]--
						buckets[deg[w]] = append(buckets[deg[w]], int(w))
					}
				}
				d = -1 // restart scan from bucket 0
				break
			}
			if d == -1 {
				break
			}
		}
	}
	// The greedy-friendly order is the reverse of the elimination order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return degeneracy, order
}

// TriangleCount returns the number of triangles (3-cycles).
func (g *Graph) TriangleCount() int {
	count := 0
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		// Intersect neighborhoods, counting only w > v to dedupe.
		for _, w := range g.adj[u] {
			if int(w) > v && g.HasEdge(v, int(w)) {
				count++
			}
		}
	}
	return count
}
