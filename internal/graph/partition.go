package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partition is a contiguous node partition of a topology: shard i owns
// the nodes [Bounds[i], Bounds[i+1]) — and, because CSR slots are grouped
// by node, exactly the directed slots
// [Offsets[Bounds[i]], Offsets[Bounds[i+1]]). A shard boundary is
// therefore a cut in Offsets, which is what makes a shard handoff a copy
// of contiguous slot ranges rather than a scatter-gather.
//
// Bounds is monotonically non-decreasing with Bounds[0] == 0 and
// Bounds[len-1] == NumNodes(); every shard must be non-empty (strictly
// increasing bounds). A Partition is plain data — build one by hand for
// adversarial cut placements, or with Topology.PartitionBySlots for a
// balanced one.
type Partition struct {
	Bounds []int32
}

// NumShards returns the number of shards.
func (p Partition) NumShards() int { return len(p.Bounds) - 1 }

// Shard returns the half-open node range [lo, hi) of shard i.
func (p Partition) Shard(i int) (lo, hi int) {
	return int(p.Bounds[i]), int(p.Bounds[i+1])
}

// ShardOf returns the shard owning node v.
func (p Partition) ShardOf(v int) int {
	return sort.Search(p.NumShards(), func(i int) bool { return int(p.Bounds[i+1]) > v })
}

// PartitionBySlots cuts the topology into `shards` contiguous non-empty
// node ranges balanced by directed-slot count — the per-round unit of
// work a shard streams. The cut before shard i lands at the first node
// whose slot offset reaches i/shards of all slots, nudged so that every
// shard keeps at least one node.
func (t *Topology) PartitionBySlots(shards int) (Partition, error) {
	n := t.NumNodes()
	if shards < 1 {
		return Partition{}, fmt.Errorf("graph: %d shards, need >= 1", shards)
	}
	if shards > n {
		return Partition{}, fmt.Errorf("graph: %d shards for %d nodes", shards, n)
	}
	total := len(t.Nbrs)
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	v := 0
	for i := 1; i < shards; i++ {
		target := (total * i) / shards
		for v < n && int(t.Offsets[v]) < target {
			v++
		}
		// Keep every shard non-empty: at least one node past the previous
		// bound, at least shards-i nodes left for the shards after us.
		if min := int(bounds[i-1]) + 1; v < min {
			v = min
		}
		if max := n - (shards - i); v > max {
			v = max
		}
		bounds[i] = int32(v)
	}
	return Partition{Bounds: bounds}, nil
}

// CheckPartition validates a partition against the topology: bounds from
// 0 to NumNodes(), strictly increasing (no empty shards).
func (t *Topology) CheckPartition(p Partition) error {
	if len(p.Bounds) < 2 {
		return fmt.Errorf("graph: partition needs >= 2 bounds, got %d", len(p.Bounds))
	}
	if p.Bounds[0] != 0 {
		return fmt.Errorf("graph: partition starts at node %d, want 0", p.Bounds[0])
	}
	if got, want := p.Bounds[len(p.Bounds)-1], int32(t.NumNodes()); got != want {
		return fmt.Errorf("graph: partition ends at node %d, want %d", got, want)
	}
	for i := 1; i < len(p.Bounds); i++ {
		if p.Bounds[i] <= p.Bounds[i-1] {
			return fmt.Errorf("graph: partition bound %d (%d) not above bound %d (%d)",
				i, p.Bounds[i], i-1, p.Bounds[i-1])
		}
	}
	return nil
}

// RandomPartition returns a uniformly random contiguous partition of n
// nodes into `shards` non-empty ranges (clamped to [1, n]). The
// shard-equivalence fuzz harness uses it to sweep adversarial cut
// placements the balanced partitioner would never produce.
func RandomPartition(n, shards int, rng *rand.Rand) Partition {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	// Choose shards-1 distinct interior cut points.
	cutSet := make(map[int]bool, shards-1)
	for len(cutSet) < shards-1 {
		cutSet[1+rng.Intn(n-1)] = true
	}
	bounds := make([]int32, 0, shards+1)
	bounds = append(bounds, 0)
	for v := 1; v < n; v++ {
		if cutSet[v] {
			bounds = append(bounds, int32(v))
		}
	}
	bounds = append(bounds, int32(n))
	return Partition{Bounds: bounds}
}

// ShardSlots is the compacted slot space of one shard under a partition:
// the per-shard global→local slot remap that lets a shard allocate
// engine slabs covering only what it actually touches — its own slot
// window plus the remote halo it reads — instead of the whole graph.
//
// Local slot coordinates are laid out as
//
//	[0, NumOwn())        the shard's own global window [SlotLo, SlotHi),
//	                     in ascending global order (local = global−SlotLo)
//	[NumOwn(), NumLocal()) the halo: remote cut slots this shard reads,
//	                     grouped by owning shard in ascending shard order
//	                     and ascending slot order within a group — exactly
//	                     the order of Topology.CutSlots' cuts[j][i] lists,
//	                     so one peer's halo segment is contiguous.
//
// Rev is the delivery wiring in local coordinates: Rev[p] is the local
// slot holding the message arriving on the shard's own slot SlotLo+p
// (the remap of Topology.RevSlot, which by the cut construction always
// lands in the own window or the halo). HaloDeg[h] is the degree of the
// remote node owning halo slot h — slab layouts size a slot's message
// capacity from its sender's degree, and the sender of a halo slot lives
// on another shard.
type ShardSlots struct {
	NodeLo, NodeHi int
	SlotLo, SlotHi int32
	Halo           []int32 // global ids of the halo slots, in local order
	HaloOff        []int32 // len shards+1: halo group of peer j is Halo[HaloOff[j]:HaloOff[j+1]]
	HaloDeg        []int32 // degree of the owning node of each halo slot
	Rev            []int32 // len NumOwn(): local index of the reverse slot
}

// NumOwn returns the number of slots the shard owns.
func (w *ShardSlots) NumOwn() int { return int(w.SlotHi - w.SlotLo) }

// NumLocal returns the total local slot count (own window + halo).
func (w *ShardSlots) NumLocal() int { return w.NumOwn() + len(w.Halo) }

// HaloLocal returns the local index of the first halo slot of peer j's
// group (meaningful only when the group is non-empty).
func (w *ShardSlots) HaloLocal(j int) int { return w.NumOwn() + int(w.HaloOff[j]) }

// ShardSlots computes shard's compacted slot space under p. cuts must be
// t.CutSlots(p); callers building every shard's window share one cut
// table. The partition is assumed valid (CheckPartition).
func (t *Topology) ShardSlots(p Partition, cuts [][][]int32, shard int) ShardSlots {
	lo, hi := p.Shard(shard)
	w := ShardSlots{
		NodeLo: lo, NodeHi: hi,
		SlotLo: t.Offsets[lo], SlotHi: t.Offsets[hi],
	}
	shards := p.NumShards()
	w.HaloOff = make([]int32, shards+1)
	for j := 0; j < shards; j++ {
		w.HaloOff[j+1] = w.HaloOff[j] + int32(len(cuts[j][shard]))
		w.Halo = append(w.Halo, cuts[j][shard]...)
	}
	own := w.NumOwn()
	// localOf maps the halo's global slots to their local indices; own
	// slots need no table (local = global − SlotLo).
	localOf := make(map[int32]int32, len(w.Halo))
	w.HaloDeg = make([]int32, len(w.Halo))
	for h, s := range w.Halo {
		localOf[s] = int32(own + h)
		// The owner of global slot s is the node whose slot window
		// contains s.
		v := sort.Search(t.NumNodes(), func(v int) bool { return t.Offsets[v+1] > s })
		w.HaloDeg[h] = t.Offsets[v+1] - t.Offsets[v]
	}
	w.Rev = make([]int32, own)
	for p := 0; p < own; p++ {
		r := t.RevSlot[int(w.SlotLo)+p]
		if r >= w.SlotLo && r < w.SlotHi {
			w.Rev[p] = r - w.SlotLo
			continue
		}
		local, ok := localOf[r]
		if !ok {
			// CutSlots lists every remote slot whose receiver lives in
			// this shard, so a miss means the partition and cut table
			// disagree — a caller bug, not a data condition.
			panic(fmt.Sprintf("graph: reverse slot %d of shard %d is neither owned nor in the halo", r, shard))
		}
		w.Rev[p] = local
	}
	return w
}

// CutSlots returns, for every ordered shard pair, the directed slots cut
// by the partition: CutSlots(p)[i][j] lists — in ascending slot order —
// the slots owned by shard i (messages staged by shard-i senders) whose
// receiving endpoint lives in shard j. These are exactly the slot ranges
// shard i must ship to shard j each round, and the ascending order makes
// the handoff a fixed sequence of contiguous [slot][lane] block copies.
// Diagonal entries (i == j) are nil: intra-shard delivery never leaves
// the shard.
func (t *Topology) CutSlots(p Partition) [][][]int32 {
	shards := p.NumShards()
	shardOf := make([]int32, t.NumNodes())
	for i := 0; i < shards; i++ {
		lo, hi := p.Shard(i)
		for v := lo; v < hi; v++ {
			shardOf[v] = int32(i)
		}
	}
	cuts := make([][][]int32, shards)
	for i := range cuts {
		cuts[i] = make([][]int32, shards)
	}
	for i := 0; i < shards; i++ {
		lo, hi := p.Shard(i)
		for s := int(t.Offsets[lo]); s < int(t.Offsets[hi]); s++ {
			j := int(shardOf[t.Nbrs[s]])
			if j != i {
				cuts[i][j] = append(cuts[i][j], int32(s))
			}
		}
	}
	return cuts
}
