package glue

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

// Union is the disjoint-union instance of Claim 3, with bookkeeping to
// locate each block.
type Union struct {
	Instance *lang.Instance
	// Offsets[i] is the node offset of block i.
	Offsets []int
	// Sizes[i] is the node count of block i.
	Sizes []int
}

// BuildDisjointUnion forms the union instance (G, x, id) of Claim 3: the
// graphs side by side, inputs concatenated, and identity blocks offset so
// that block i+1's identities all exceed block i's ("we can carry on that
// process" with I_{i+1} = 1 + max id of the previous blocks).
func BuildDisjointUnion(parts []*lang.Instance) (*Union, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("glue: empty union")
	}
	graphs := make([]*graph.Graph, len(parts))
	idBlocks := make([]ids.Assignment, len(parts))
	var x [][]byte
	for i, p := range parts {
		graphs[i] = p.G
		idBlocks[i] = p.ID
		x = append(x, p.X...)
	}
	u := graph.DisjointUnion(graphs...)
	id := ids.Concat(idBlocks...)
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = p.G.N()
	}
	in := &lang.Instance{G: u.G, X: x, ID: id}
	if err := id.Validate(); err != nil {
		return nil, err
	}
	return &Union{Instance: in, Offsets: u.Offsets, Sizes: sizes}, nil
}

// Anchor designates where a block is opened up for gluing: the node u_i
// of Claim 5 and the incident edge e_i to subdivide (by port).
type Anchor struct {
	// Node is u_i, in block-local indexing.
	Node int
	// Port selects the incident edge e_i at u_i.
	Port int
}

// Glued is the connected instance built by the Theorem 1 surgery.
type Glued struct {
	Instance *lang.Instance
	// Offsets[i] is the node offset of block i in the glued graph.
	Offsets []int
	// U[i], V[i], W[i] are the global indices of u_i and the two nodes
	// inserted by the double subdivision of e_i (u_i – v_i – w_i – z_i).
	U, V, W []int
}

// BuildGlued performs the gluing of the proof of Theorem 1: each block's
// anchor edge e_i = {u_i, z_i} is subdivided twice (inserting v_i, w_i),
// the blocks are laid side by side, and the ring edges {v_i, w_{i+1}} for
// i < ν′ and {v_{ν′}, w_1} connect them. The inserted nodes receive fresh
// identities above every block identity and empty inputs ("inputs and
// identities given to the nodes of G not in some H_i are set
// arbitrarily"). Degrees: v_i and w_i end at degree 3, u_i and z_i keep
// their degrees — hence the paper's requirement k > 2.
func BuildGlued(parts []*lang.Instance, anchors []Anchor) (*Glued, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("glue: need at least 2 blocks, got %d", len(parts))
	}
	if len(anchors) != len(parts) {
		return nil, fmt.Errorf("glue: %d anchors for %d blocks", len(anchors), len(parts))
	}
	// Subdivide each block first (block-locally).
	subGraphs := make([]*graph.Graph, len(parts))
	vLocal := make([]int, len(parts))
	wLocal := make([]int, len(parts))
	for i, p := range parts {
		a := anchors[i]
		if a.Node < 0 || a.Node >= p.G.N() {
			return nil, fmt.Errorf("glue: block %d anchor node %d out of range", i, a.Node)
		}
		if a.Port < 0 || a.Port >= p.G.Degree(a.Node) {
			return nil, fmt.Errorf("glue: block %d anchor port %d out of range", i, a.Port)
		}
		z := p.G.Neighbor(a.Node, a.Port)
		res, err := p.G.SubdivideTwice(a.Node, z)
		if err != nil {
			return nil, fmt.Errorf("glue: block %d: %w", i, err)
		}
		subGraphs[i] = res.G
		vLocal[i] = res.VNode
		wLocal[i] = res.WNode
	}
	// Disjoint union of the subdivided blocks.
	u := graph.DisjointUnion(subGraphs...)
	// Inputs: block inputs followed by empty inputs for v_i, w_i (the
	// subdivision appends them as the last two nodes of each block).
	var x [][]byte
	total := 0
	for _, p := range parts {
		x = append(x, p.X...)
		x = append(x, nil, nil)
		total += p.G.N() + 2
	}
	id := make(ids.Assignment, total)
	var maxID int64
	for i, p := range parts {
		off := u.Offsets[i]
		base := maxID // block identities shifted above all previous ones
		var blockMax int64
		for v := 0; v < p.G.N(); v++ {
			val := p.ID[v] + base
			id[off+v] = val
			if val > blockMax {
				blockMax = val
			}
		}
		maxID = blockMax
	}
	// Fresh identities for the inserted nodes.
	next := maxID + 1
	for i := range parts {
		off := u.Offsets[i]
		id[off+vLocal[i]] = next
		id[off+wLocal[i]] = next + 1
		next += 2
	}
	// Ring edges between blocks.
	var extra [][2]int
	nBlocks := len(parts)
	gv := make([]int, nBlocks)
	gw := make([]int, nBlocks)
	gu := make([]int, nBlocks)
	for i := range parts {
		gv[i] = u.Offsets[i] + vLocal[i]
		gw[i] = u.Offsets[i] + wLocal[i]
		gu[i] = u.Offsets[i] + anchors[i].Node
	}
	for i := 0; i < nBlocks; i++ {
		extra = append(extra, [2]int{gv[i], gw[(i+1)%nBlocks]})
	}
	g, err := u.G.WithExtraEdges(extra)
	if err != nil {
		return nil, fmt.Errorf("glue: ring edges: %w", err)
	}
	if err := id.Validate(); err != nil {
		return nil, err
	}
	return &Glued{
		Instance: &lang.Instance{G: g, X: x, ID: id},
		Offsets:  u.Offsets,
		U:        gu,
		V:        gv,
		W:        gw,
	}, nil
}
