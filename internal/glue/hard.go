package glue

import (
	"fmt"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
)

// This file plays the role of Claim 2 for concrete algorithms: it finds,
// for a given construction algorithm and target language, instances
// (H, x, id) with diameter ≥ Dmin and identities ≥ Imin on which the
// algorithm fails (deterministically, or with estimated probability
// ≥ β). The search walks the consecutive-identity cycle family — the
// hard family identified by the paper's Section 4 argument.

// HardInstance couples an instance with the measured failure evidence.
type HardInstance struct {
	Instance *lang.Instance
	// FailureProb estimates Pr[C(H,x,id) ∉ L]; 1.0 for deterministic
	// failures.
	FailureProb mc.Estimate
	// N is the cycle length used.
	N int
}

// Runner abstracts construction algorithms for the search (matches
// construct.Algorithm without importing it, keeping glue independent of
// the algorithm catalogue).
type Runner interface {
	Name() string
	Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error)
}

// batchRunner and engineRunner mirror construct's BatchRunner and
// EngineRunner without the import: runners that support vectorized or
// pooled execution are detected structurally, and the failure search
// uses the fastest path available.
type batchRunner interface {
	RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error)
}

type engineRunner interface {
	RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error)
}

// hardSearchBatch is the lane count of the batched failure estimate.
const hardSearchBatch = 32

// FindHardCycle searches cycles C_n with identities Imin, Imin+1, ... for
// an instance where the runner's output falls outside the language with
// probability at least betaTarget (estimated over `trials` draws of the
// given tape space; pass space = nil and trials = 1 for deterministic
// runners). The cycle length starts at max(2*Dmin, minN) — a cycle of
// length 2D has diameter D — and doubles until maxN.
func FindHardCycle(runner Runner, language lang.Language, dmin int, imin int64,
	betaTarget float64, space *localrand.TapeSpace, trials, maxN int) (*HardInstance, error) {
	n := 2 * dmin
	if n < 8 {
		n = 8
	}
	for ; n <= maxN; n *= 2 {
		in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.ConsecutiveFrom(n, imin))
		if err != nil {
			return nil, err
		}
		est := estimateFailure(runner, language, in, space, trials)
		if est.P() >= betaTarget {
			return &HardInstance{Instance: in, FailureProb: est, N: n}, nil
		}
	}
	return nil, fmt.Errorf("glue: no hard cycle up to n=%d for %s on %s (β target %v)",
		maxN, runner.Name(), language.Name(), betaTarget)
}

// estimateFailure measures Pr[runner's output falls outside the language]
// on one instance. Randomized runners execute on the fastest path they
// support — a batched engine (one trial vector per worker chunk), a
// pooled engine, or single-shot runs — with identical per-trial outputs
// on every path, so the estimate does not depend on the path taken.
func estimateFailure(runner Runner, language lang.Language, in *lang.Instance,
	space *localrand.TapeSpace, trials int) mc.Estimate {
	outside := func(y [][]byte, err error) bool {
		if err != nil {
			return true // failure to run is failure
		}
		ok, err := language.Contains(&lang.Config{G: in.G, X: in.X, Y: y})
		return err != nil || !ok
	}
	if space == nil || trials <= 1 {
		e := mc.Estimate{Trials: 1}
		if outside(runner.Run(in, nil)) {
			e.Successes = 1
		}
		return e
	}
	if br, ok := runner.(batchRunner); ok {
		plan := local.MustPlan(in.G)
		type scratch struct {
			bt    *local.Batch
			ins   []*lang.Instance
			draws []localrand.Draw
		}
		newState := func() *scratch {
			s := &scratch{
				bt:    plan.NewBatch(hardSearchBatch),
				ins:   make([]*lang.Instance, hardSearchBatch),
				draws: make([]localrand.Draw, hardSearchBatch),
			}
			for b := range s.ins {
				s.ins[b] = in
			}
			return s
		}
		return mc.RunBatched(trials, hardSearchBatch, newState, func(s *scratch, lo, hi int, out []bool) {
			k := hi - lo
			for b := 0; b < k; b++ {
				s.draws[b] = space.Draw(uint64(lo + b))
			}
			ys, err := br.RunBatch(s.bt, s.ins[:k], s.draws[:k])
			if err != nil {
				for b := range out {
					out[b] = true
				}
				return
			}
			for b, y := range ys {
				out[b] = outside(y, nil)
			}
		})
	}
	if er, ok := runner.(engineRunner); ok {
		plan := local.MustPlan(in.G)
		return mc.RunWith(trials, plan.NewEngine, func(eng *local.Engine, trial int) bool {
			draw := space.Draw(uint64(trial))
			return outside(er.RunOn(eng, in, &draw))
		})
	}
	return mc.Run(trials, func(trial int) bool {
		draw := space.Draw(uint64(trial))
		return outside(runner.Run(in, &draw))
	})
}

// HardSequence builds the sequence (H_i, x_i, id_i), i = 1..count, of the
// proofs of Claim 3 and Theorem 1: each H_i is a hard cycle for the
// runner, with diameter ≥ dmin, and identity ranges strictly increasing
// across the sequence (id_{i+1} starts above max id of H_i).
func HardSequence(runner Runner, language lang.Language, count, dmin int,
	betaTarget float64, space *localrand.TapeSpace, trials, maxN int) ([]*lang.Instance, []mc.Estimate, error) {
	var parts []*lang.Instance
	var evidence []mc.Estimate
	imin := int64(1)
	for i := 0; i < count; i++ {
		hi, err := FindHardCycle(runner, language, dmin, imin, betaTarget, space, trials, maxN)
		if err != nil {
			return nil, nil, fmt.Errorf("glue: block %d: %w", i, err)
		}
		parts = append(parts, hi.Instance)
		evidence = append(evidence, hi.FailureProb)
		imin = hi.Instance.ID.Max() + 1
	}
	return parts, evidence, nil
}

// ScatteredAnchors picks, for each block, an anchor node from a scattered
// set of µ candidates pairwise ≥ 2(t+t′) apart (the set S of the proof)
// and its port-0 edge. pick selects which candidate becomes u_i; passing
// nil picks the first.
func ScatteredAnchors(parts []*lang.Instance, mu, t, tPrime int,
	pick func(block int, candidates []int) int) ([]Anchor, error) {
	sep := 2 * (t + tPrime)
	anchors := make([]Anchor, len(parts))
	for i, p := range parts {
		s := p.G.ScatteredSet(sep, mu)
		if len(s) < mu {
			return nil, fmt.Errorf("glue: block %d: only %d scattered nodes at separation %d, need µ=%d (diameter too small)",
				i, len(s), sep, mu)
		}
		choice := 0
		if pick != nil {
			choice = pick(i, s)
		}
		anchors[i] = Anchor{Node: s[choice], Port: 0}
	}
	return anchors, nil
}

// BestAnchorByFarRejection implements Claim 5's selection: among the
// scattered candidates of a block, pick the node u maximizing the
// empirical Pr[D rejects C(H) far from u]. The decider evaluation is
// supplied as a callback to avoid a dependency on package decide.
func BestAnchorByFarRejection(candidates []int, rejectFarProb func(u int) float64) int {
	best, bestP := 0, -1.0
	for i, u := range candidates {
		if p := rejectFarProb(u); p > bestP {
			bestP = p
			best = i
		}
	}
	return best
}
