// Package glue implements the constructions in the proof of Theorem 1:
// the boosting parameters ν (Eq. 3), µ, D = 2µ(t+t′) and ν′; the disjoint
// union of hard instances (Claim 3); the connectivity-preserving gluing —
// subdivide an edge twice in each copy and ring-connect the inserted
// nodes — used in the main proof; and the hard-instance search that plays
// the role of Claim 2 for a concrete corpus of order-invariant
// algorithms.
package glue

import (
	"errors"
	"fmt"
	"math"
)

// ErrParam reports parameters outside the ranges the proof requires.
var ErrParam = errors.New("glue: parameter out of range")

// checkProb validates p ∈ (1/2, 1], r ∈ (0, 1], β ∈ (0, 1].
func checkProbs(r, p, beta float64) error {
	if !(p > 0.5 && p <= 1) {
		return fmt.Errorf("%w: decider guarantee p=%v must be in (1/2, 1]", ErrParam, p)
	}
	if !(r > 0 && r <= 1) {
		return fmt.Errorf("%w: construction success r=%v must be in (0, 1]", ErrParam, r)
	}
	if !(beta > 0 && beta <= 1) {
		return fmt.Errorf("%w: failure probability β=%v must be in (0, 1]", ErrParam, beta)
	}
	return nil
}

// Mu returns the size of the scattered set S in the proof of Claim 4.
// The paper sets µ = ⌈1/(2p−1)⌉ and uses µ(2p−1) > 1; at boundary values
// (e.g. p = 3/4, where ⌈1/(2p−1)⌉·(2p−1) = 1 exactly) the ceiling alone
// gives only ≥, so we take µ = ⌊1/(2p−1)⌋ + 1, which always satisfies the
// strict inequality the contradiction in Claim 4 requires and coincides
// with the paper's value everywhere else.
func Mu(p float64) (int, error) {
	if !(p > 0.5 && p <= 1) {
		return 0, fmt.Errorf("%w: p=%v", ErrParam, p)
	}
	mu := int(math.Floor(1/(2*p-1))) + 1
	return mu, nil
}

// NuDisjoint returns ν from Eq. (3): ν = 1 + ⌈ln(rp)/ln(1−βp)⌉, the
// number of disjoint hard instances making
// (1/p)·(1−βp)^ν < r in the proof of Claim 3.
func NuDisjoint(r, p, beta float64) (int, error) {
	if err := checkProbs(r, p, beta); err != nil {
		return 0, err
	}
	nu := 1 + int(math.Ceil(math.Log(r*p)/math.Log(1-beta*p)))
	if nu < 1 {
		nu = 1
	}
	return nu, nil
}

// NuDisjointSearch returns the smallest ν with (1/p)(1−βp)^ν < r, the
// inequality the proof actually needs; used to cross-check Eq. (3).
func NuDisjointSearch(r, p, beta float64) (int, error) {
	if err := checkProbs(r, p, beta); err != nil {
		return 0, err
	}
	q := 1 - beta*p
	bound := 1 / p
	for nu := 1; nu <= 1_000_000; nu++ {
		bound *= q
		if bound < r {
			return nu, nil
		}
	}
	return 0, fmt.Errorf("%w: no ν below 10^6 (r=%v p=%v β=%v)", ErrParam, r, p, beta)
}

// D returns the diameter bound D = 2µ(t+t′) used to pick the instances
// H_i: it guarantees a scattered set of µ vertices pairwise at distance
// at least 2(t+t′).
func D(mu, t, tPrime int) int {
	return 2 * mu * (t + tPrime)
}

// NuPrimeSearch returns the smallest ν′ with (1/p)·q^{ν′} < r for
// q = 1 − β(1−p)/µ — the inequality the final contradiction of Theorem 1
// needs.
func NuPrimeSearch(r, p, beta float64, mu int) (int, error) {
	if err := checkProbs(r, p, beta); err != nil {
		return 0, err
	}
	if mu < 1 {
		return 0, fmt.Errorf("%w: µ=%d", ErrParam, mu)
	}
	q := 1 - beta*(1-p)/float64(mu)
	if q >= 1 {
		return 0, fmt.Errorf("%w: per-block rejection rate vanished (p=%v)", ErrParam, p)
	}
	bound := 1 / p
	for nu := 1; nu <= 10_000_000; nu++ {
		bound *= q
		if bound < r {
			return nu, nil
		}
	}
	return 0, fmt.Errorf("%w: no ν′ below 10^7", ErrParam)
}

// NuPrimePaper evaluates the closed form as printed in the paper,
// ν′ = 1 + ⌈ln(rp)/ln((1/p)(1−β(1−p)/µ))⌉.
//
// Reproduction finding (recorded in EXPERIMENTS.md, E15): the printed
// base (1/p)(1−β(1−p)/µ) is ≥ 1 for ALL admissible parameters — it is
// below 1 iff β(1−p)/µ > 1−p, i.e. iff β > µ, which never holds since
// β ≤ 1 ≤ µ. The printed formula is therefore degenerate everywhere (a
// typo: the 1/p factor belongs outside the logarithm's argument, matching
// the displayed inequality Pr ≤ (1/p)(1−β(1−p)/µ)^{ν′} < r). A degenerate
// evaluation returns ok = false; NuPrimeCorrected gives the intended
// closed form and NuPrimeSearch the exact minimum.
func NuPrimePaper(r, p, beta float64, mu int) (nuPrime int, ok bool) {
	base := (1 / p) * (1 - beta*(1-p)/float64(mu))
	if base >= 1 || base <= 0 {
		return 0, false
	}
	v := 1 + int(math.Ceil(math.Log(r*p)/math.Log(base)))
	if v < 1 {
		v = 1
	}
	return v, true
}

// NuPrimeCorrected is the intended closed form,
// ν′ = 1 + ⌈ln(rp)/ln(1−β(1−p)/µ)⌉, which makes
// (1/p)(1−β(1−p)/µ)^{ν′} < r hold: it exceeds NuPrimeSearch by at most 1.
func NuPrimeCorrected(r, p, beta float64, mu int) (int, error) {
	if err := checkProbs(r, p, beta); err != nil {
		return 0, err
	}
	if mu < 1 {
		return 0, fmt.Errorf("%w: µ=%d", ErrParam, mu)
	}
	q := 1 - beta*(1-p)/float64(mu)
	if q >= 1 || q <= 0 {
		return 0, fmt.Errorf("%w: q=%v", ErrParam, q)
	}
	v := 1 + int(math.Ceil(math.Log(r*p)/math.Log(q)))
	if v < 1 {
		v = 1
	}
	return v, nil
}

// ResilientPInterval returns the open interval (2^{−1/f}, 2^{−1/(f+1)})
// from the proof of Corollary 1.
func ResilientPInterval(f int) (lo, hi float64, err error) {
	if f < 1 {
		return 0, 0, fmt.Errorf("%w: f=%d must be ≥ 1", ErrParam, f)
	}
	return math.Exp2(-1 / float64(f)), math.Exp2(-1 / float64(f+1)), nil
}

// DisjointAcceptBound returns the Claim 3 acceptance bound (1−βp)^ν.
func DisjointAcceptBound(p, beta float64, nu int) float64 {
	return math.Pow(1-beta*p, float64(nu))
}

// GluedAcceptBound returns the Theorem 1 acceptance bound
// (1 − β(1−p)/µ)^{ν′}.
func GluedAcceptBound(p, beta float64, mu, nuPrime int) float64 {
	return math.Pow(1-beta*(1-p)/float64(mu), float64(nuPrime))
}
