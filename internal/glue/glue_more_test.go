package glue

import (
	"errors"
	"math"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// coinRunner fails (monochromatic output) with probability 1/2 per run,
// decided by the tape of the minimum identity.
type coinRunner struct{}

func (coinRunner) Name() string { return "coin" }
func (coinRunner) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	y := make([][]byte, in.G.N())
	fail := draw != nil && draw.Tape(in.ID.Min()).Bernoulli(0.5)
	for v := range y {
		c := v % 3
		if fail {
			c = 1
		}
		y[v] = lang.EncodeColor(c)
	}
	return y, nil
}

func TestFindHardCycleRandomized(t *testing.T) {
	l := lang.ProperColoring(3)
	space := localrand.NewTapeSpace(3)
	hi, err := FindHardCycle(coinRunner{}, l, 4, 1, 0.3, space, 400, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if p := hi.FailureProb.P(); math.Abs(p-0.5) > 0.15 {
		t.Errorf("failure prob %v, want ≈ 0.5", p)
	}
}

func TestHardSequencePropagatesFailure(t *testing.T) {
	l := lang.ProperColoring(3)
	if _, _, err := HardSequence(perfectRunner{}, l, 2, 4, 1.0, nil, 1, 32); err == nil {
		t.Error("expected propagation of block search failure")
	}
}

func TestNuDisjointRejectsBadParams(t *testing.T) {
	cases := []struct{ r, p, beta float64 }{
		{0.5, 0.5, 0.1},  // p too small
		{0.5, 1.01, 0.1}, // p too large
		{0, 0.75, 0.1},   // r zero
		{0.5, 0.75, 0},   // beta zero
		{1.5, 0.75, 0.1}, // r above 1
	}
	for _, tc := range cases {
		if _, err := NuDisjoint(tc.r, tc.p, tc.beta); !errors.Is(err, ErrParam) {
			t.Errorf("NuDisjoint(%v,%v,%v): err = %v, want ErrParam", tc.r, tc.p, tc.beta, err)
		}
		if _, err := NuDisjointSearch(tc.r, tc.p, tc.beta); !errors.Is(err, ErrParam) {
			t.Errorf("NuDisjointSearch(%v,%v,%v): err = %v, want ErrParam", tc.r, tc.p, tc.beta, err)
		}
		if _, err := NuPrimeSearch(tc.r, tc.p, tc.beta, 3); !errors.Is(err, ErrParam) {
			t.Errorf("NuPrimeSearch(%v,%v,%v): err = %v, want ErrParam", tc.r, tc.p, tc.beta, err)
		}
		if _, err := NuPrimeCorrected(tc.r, tc.p, tc.beta, 3); !errors.Is(err, ErrParam) {
			t.Errorf("NuPrimeCorrected(%v,%v,%v): err = %v, want ErrParam", tc.r, tc.p, tc.beta, err)
		}
	}
	if _, err := NuPrimeSearch(0.5, 0.75, 0.2, 0); !errors.Is(err, ErrParam) {
		t.Error("µ = 0 accepted")
	}
	if _, err := NuPrimeCorrected(0.5, 0.75, 0.2, 0); !errors.Is(err, ErrParam) {
		t.Error("µ = 0 accepted by corrected formula")
	}
}

func TestBuildDisjointUnionEmpty(t *testing.T) {
	if _, err := BuildDisjointUnion(nil); err == nil {
		t.Error("empty union accepted")
	}
}

func TestScatteredAnchorsCustomPick(t *testing.T) {
	parts := []*lang.Instance{
		cycleInstance(t, 40, 1),
		cycleInstance(t, 40, 100),
	}
	picked := make([]int, 0, 2)
	anchors, err := ScatteredAnchors(parts, 3, 1, 1, func(block int, candidates []int) int {
		picked = append(picked, len(candidates))
		return len(candidates) - 1 // always the last candidate
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 2 || picked[0] < 3 {
		t.Errorf("custom pick not honored: %v %v", anchors, picked)
	}
}

func TestEstimateFailureRunnerError(t *testing.T) {
	l := lang.ProperColoring(3)
	// A runner that always errors counts as failure.
	hi, err := FindHardCycle(errorRunner{}, l, 4, 1, 1.0, nil, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hi.FailureProb.P() != 1 {
		t.Error("erroring runner should be a certain failure")
	}
}

type errorRunner struct{}

func (errorRunner) Name() string { return "error" }
func (errorRunner) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return nil, errors.New("boom")
}

// pooledCoinRunner augments coinRunner with pooled and batched execution
// paths whose per-trial outputs equal the single-shot ones, so the
// failure estimate must be identical no matter which path the search
// detects and takes.
type pooledCoinRunner struct{ coinRunner }

func (r pooledCoinRunner) RunOn(_ *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return r.Run(in, draw)
}

func (r pooledCoinRunner) RunBatch(_ *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	ys := make([][][]byte, len(ins))
	for b, in := range ins {
		y, err := r.Run(in, &draws[b])
		if err != nil {
			return nil, err
		}
		ys[b] = y
	}
	return ys, nil
}

// TestEstimateFailurePathsAgree pins that the batched and pooled failure
// estimates replay exactly the single-shot per-trial draws: same trial
// indexing, same estimate, not merely the same limit.
func TestEstimateFailurePathsAgree(t *testing.T) {
	l := lang.ProperColoring(3)
	space := localrand.NewTapeSpace(5)
	in, err := lang.NewInstance(graph.Cycle(12), lang.EmptyInputs(12), ids.Consecutive(12))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200
	want := estimateFailure(coinRunner{}, l, in, space, trials)
	gotBatched := estimateFailure(pooledCoinRunner{}, l, in, space, trials)
	if want != gotBatched {
		t.Errorf("batched estimate %v, single-shot %v", gotBatched, want)
	}
	// engineRunner-only path: embedding the interface promotes RunOn but
	// not RunBatch, so the search must take the pooled branch.
	gotPooled := estimateFailure(struct {
		coinRunner
		engineRunner
	}{coinRunner{}, pooledCoinRunner{}}, l, in, space, trials)
	if want != gotPooled {
		t.Errorf("pooled estimate %v, single-shot %v", gotPooled, want)
	}
}
