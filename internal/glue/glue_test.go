package glue

import (
	"errors"
	"math"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

func cycleInstance(t testing.TB, n int, startID int64) *lang.Instance {
	t.Helper()
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.ConsecutiveFrom(n, startID))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMu(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{0.6, 6},  // 1/(2p-1) = 5 exactly; µ = ⌊5⌋+1 for strictness
		{0.75, 3}, // 1/0.5 = 2 exactly; bumped to 3
		{0.9, 2},  // 1/0.8 = 1.25 -> ⌊1.25⌋+1 = 2; 2·0.8 = 1.6 > 1
		{1.0, 2},  // ⌊1⌋+1 = 2
	}
	for _, tc := range cases {
		got, err := Mu(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Mu(%v) = %d, want %d", tc.p, got, tc.want)
		}
		if float64(got)*(2*tc.p-1) <= 1 {
			t.Errorf("Mu(%v): µ(2p−1) = %v not > 1", tc.p, float64(got)*(2*tc.p-1))
		}
	}
	if _, err := Mu(0.5); !errors.Is(err, ErrParam) {
		t.Error("p=0.5 accepted")
	}
}

func TestNuDisjointMatchesSearch(t *testing.T) {
	for _, r := range []float64{0.5, 0.75, 0.9} {
		for _, p := range []float64{0.6, 0.75, 0.9} {
			for _, beta := range []float64{0.1, 0.25, 0.5} {
				formula, err := NuDisjoint(r, p, beta)
				if err != nil {
					t.Fatal(err)
				}
				search, err := NuDisjointSearch(r, p, beta)
				if err != nil {
					t.Fatal(err)
				}
				// Eq. (3) must satisfy the inequality; the exact search
				// can only be at most the formula value.
				if formula < search {
					t.Errorf("r=%v p=%v β=%v: formula ν=%d < minimal %d — bound violated",
						r, p, beta, formula, search)
				}
				if formula > search+1 {
					t.Errorf("r=%v p=%v β=%v: formula ν=%d loose vs minimal %d",
						r, p, beta, formula, search)
				}
				// Verify the inequality the proof of Claim 3 needs.
				if (1/p)*math.Pow(1-beta*p, float64(formula)) >= r {
					t.Errorf("r=%v p=%v β=%v: (1/p)(1−βp)^ν = %v not < r",
						r, p, beta, (1/p)*math.Pow(1-beta*p, float64(formula)))
				}
			}
		}
	}
}

func TestNuPrimeSearchSatisfiesInequality(t *testing.T) {
	for _, p := range []float64{0.6, 0.75, 0.9} {
		mu, err := Mu(p)
		if err != nil {
			t.Fatal(err)
		}
		nu, err := NuPrimeSearch(0.8, p, 0.2, mu)
		if err != nil {
			t.Fatal(err)
		}
		q := 1 - 0.2*(1-p)/float64(mu)
		if (1/p)*math.Pow(q, float64(nu)) >= 0.8 {
			t.Errorf("p=%v: ν′=%d does not satisfy the bound", p, nu)
		}
		// Minimality.
		if nu > 1 && (1/p)*math.Pow(q, float64(nu-1)) < 0.8 {
			t.Errorf("p=%v: ν′=%d not minimal", p, nu)
		}
	}
}

func TestNuPrimePaperAlwaysDegenerate(t *testing.T) {
	// The reproduction finding: the printed base is ≥ 1 for every
	// admissible parameter combination, so the closed form as printed
	// never evaluates.
	for _, p := range []float64{0.51, 0.6, 0.75, 0.9, 0.99} {
		for _, beta := range []float64{0.01, 0.25, 1.0} {
			mu, err := Mu(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := NuPrimePaper(0.8, p, beta, mu); ok {
				t.Errorf("p=%v β=%v µ=%d: printed formula unexpectedly well-defined", p, beta, mu)
			}
		}
	}
}

func TestNuPrimeCorrectedMatchesSearch(t *testing.T) {
	for _, p := range []float64{0.6, 0.75, 0.9} {
		for _, beta := range []float64{0.1, 0.5, 1.0} {
			mu, err := Mu(p)
			if err != nil {
				t.Fatal(err)
			}
			corrected, err := NuPrimeCorrected(0.8, p, beta, mu)
			if err != nil {
				t.Fatal(err)
			}
			search, err := NuPrimeSearch(0.8, p, beta, mu)
			if err != nil {
				t.Fatal(err)
			}
			if corrected < search || corrected > search+1 {
				t.Errorf("p=%v β=%v: corrected %d vs minimal %d", p, beta, corrected, search)
			}
			// The corrected value satisfies the proof's inequality.
			q := 1 - beta*(1-p)/float64(mu)
			if (1/p)*math.Pow(q, float64(corrected)) >= 0.8 {
				t.Errorf("p=%v β=%v: corrected ν′ fails the bound", p, beta)
			}
		}
	}
}

func TestD(t *testing.T) {
	if D(3, 1, 2) != 18 {
		t.Errorf("D(3,1,2) = %d, want 18", D(3, 1, 2))
	}
}

func TestResilientPInterval(t *testing.T) {
	lo, hi, err := ResilientPInterval(3)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi && lo > 0.5) {
		t.Errorf("interval (%v, %v) malformed", lo, hi)
	}
	if _, _, err := ResilientPInterval(0); err == nil {
		t.Error("f=0 accepted")
	}
}

func TestBuildDisjointUnion(t *testing.T) {
	parts := []*lang.Instance{
		cycleInstance(t, 6, 1),
		cycleInstance(t, 8, 1), // overlapping id range on purpose
		cycleInstance(t, 4, 1),
	}
	u, err := BuildDisjointUnion(parts)
	if err != nil {
		t.Fatal(err)
	}
	if u.Instance.G.N() != 18 {
		t.Fatalf("union size %d, want 18", u.Instance.G.N())
	}
	if u.Instance.G.ComponentCount() != 3 {
		t.Errorf("components = %d, want 3", u.Instance.G.ComponentCount())
	}
	if err := u.Instance.ID.Validate(); err != nil {
		t.Errorf("union ids invalid: %v", err)
	}
	// Monotone block ranges.
	firstMax := ids.Assignment(u.Instance.ID[:6]).Max()
	secondMin := ids.Assignment(u.Instance.ID[6:14]).Min()
	if secondMin <= firstMax {
		t.Errorf("block 2 ids start at %d, not above block 1 max %d", secondMin, firstMax)
	}
}

func TestBuildGluedStructure(t *testing.T) {
	parts := []*lang.Instance{
		cycleInstance(t, 8, 1),
		cycleInstance(t, 10, 1),
		cycleInstance(t, 12, 1),
	}
	anchors := []Anchor{{Node: 0, Port: 0}, {Node: 3, Port: 0}, {Node: 5, Port: 1}}
	gl, err := BuildGlued(parts, anchors)
	if err != nil {
		t.Fatal(err)
	}
	g := gl.Instance.G
	if !g.Connected() {
		t.Fatal("glued graph not connected")
	}
	// k = 3 for cycles: subdivision inserts degree-2 nodes, ring edges
	// raise v_i and w_i to 3; cycle nodes stay at 2.
	if g.MaxDegree() != 3 {
		t.Errorf("max degree = %d, want 3", g.MaxDegree())
	}
	if g.N() != 8+10+12+6 {
		t.Errorf("n = %d, want 36", g.N())
	}
	for i := range parts {
		if g.Degree(gl.V[i]) != 3 || g.Degree(gl.W[i]) != 3 {
			t.Errorf("block %d: v/w degrees %d/%d, want 3/3",
				i, g.Degree(gl.V[i]), g.Degree(gl.W[i]))
		}
		if g.Degree(gl.U[i]) != 2 {
			t.Errorf("block %d: u degree %d, want 2 (unchanged)", i, g.Degree(gl.U[i]))
		}
	}
	// Ring edges present.
	for i := range parts {
		j := (i + 1) % len(parts)
		if !g.HasEdge(gl.V[i], gl.W[j]) {
			t.Errorf("ring edge v_%d—w_%d missing", i, j)
		}
	}
	if err := gl.Instance.ID.Validate(); err != nil {
		t.Errorf("glued ids invalid: %v", err)
	}
	if len(gl.Instance.X) != g.N() {
		t.Errorf("inputs not aligned: %d vs %d", len(gl.Instance.X), g.N())
	}
}

func TestBuildGluedValidation(t *testing.T) {
	one := []*lang.Instance{cycleInstance(t, 6, 1)}
	if _, err := BuildGlued(one, []Anchor{{}}); err == nil {
		t.Error("single block accepted")
	}
	two := []*lang.Instance{cycleInstance(t, 6, 1), cycleInstance(t, 6, 1)}
	if _, err := BuildGlued(two, []Anchor{{}}); err == nil {
		t.Error("anchor count mismatch accepted")
	}
	if _, err := BuildGlued(two, []Anchor{{Node: 99}, {}}); err == nil {
		t.Error("out-of-range anchor accepted")
	}
	if _, err := BuildGlued(two, []Anchor{{Node: 0, Port: 7}, {}}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

// failingRunner outputs a monochromatic coloring: always wrong for
// 3-coloring, deterministically.
type failingRunner struct{}

func (failingRunner) Name() string { return "mono" }
func (failingRunner) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	y := make([][]byte, in.G.N())
	for v := range y {
		y[v] = lang.EncodeColor(1)
	}
	return y, nil
}

func TestFindHardCycleDeterministic(t *testing.T) {
	l := lang.ProperColoring(3)
	hi, err := FindHardCycle(failingRunner{}, l, 5, 100, 1.0, nil, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if hi.FailureProb.P() != 1 {
		t.Errorf("failure prob %v, want 1", hi.FailureProb.P())
	}
	if hi.Instance.ID.Min() < 100 {
		t.Errorf("id min %d below Imin", hi.Instance.ID.Min())
	}
	if hi.Instance.G.Diameter() < 5 {
		t.Errorf("diameter %d below Dmin", hi.Instance.G.Diameter())
	}
}

// perfectRunner 3-colors cycles of length divisible by 3 by position...
// it cannot exist in the LOCAL model, but as a test double it never fails
// on the searched family when n % 3 == 0; FindHardCycle must keep
// searching and eventually error out.
type perfectRunner struct{}

func (perfectRunner) Name() string { return "oracle" }
func (perfectRunner) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	y := make([][]byte, in.G.N())
	for v := range y {
		y[v] = lang.EncodeColor(v % 2)
	}
	// Proper on even cycles; the search uses powers of two, all even.
	return y, nil
}

func TestFindHardCycleGivesUp(t *testing.T) {
	l := lang.ProperColoring(3)
	if _, err := FindHardCycle(perfectRunner{}, l, 4, 1, 1.0, nil, 1, 64); err == nil {
		t.Error("expected failure for an always-correct runner")
	}
}

func TestHardSequenceDisjointIDs(t *testing.T) {
	l := lang.ProperColoring(3)
	parts, evidence, err := HardSequence(failingRunner{}, l, 3, 4, 1.0, nil, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 || len(evidence) != 3 {
		t.Fatalf("got %d parts, %d evidence", len(parts), len(evidence))
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].ID.Min() <= parts[i-1].ID.Max() {
			t.Errorf("block %d ids overlap block %d", i, i-1)
		}
	}
}

func TestScatteredAnchors(t *testing.T) {
	parts := []*lang.Instance{
		cycleInstance(t, 40, 1),
		cycleInstance(t, 40, 100),
	}
	anchors, err := ScatteredAnchors(parts, 3, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 2 {
		t.Fatalf("anchors = %d", len(anchors))
	}
	// Too-large µ on a small cycle must fail loudly.
	small := []*lang.Instance{cycleInstance(t, 8, 1), cycleInstance(t, 8, 50)}
	if _, err := ScatteredAnchors(small, 5, 2, 2, nil); err == nil {
		t.Error("expected scattered-set failure on small blocks")
	}
}

func TestBestAnchorByFarRejection(t *testing.T) {
	candidates := []int{10, 20, 30}
	probs := map[int]float64{10: 0.1, 20: 0.9, 30: 0.4}
	best := BestAnchorByFarRejection(candidates, func(u int) float64 { return probs[u] })
	if best != 1 {
		t.Errorf("best index = %d, want 1", best)
	}
}

func TestBoundHelpers(t *testing.T) {
	if b := DisjointAcceptBound(0.8, 0.5, 2); math.Abs(b-0.36) > 1e-12 {
		t.Errorf("DisjointAcceptBound = %v, want 0.36", b)
	}
	if b := GluedAcceptBound(0.8, 0.5, 5, 1); math.Abs(b-(1-0.5*0.2/5)) > 1e-12 {
		t.Errorf("GluedAcceptBound = %v", b)
	}
}

// Integration: glued hard instances drive a deterministic bad constructor
// to failure everywhere, and the LCL decider rejects.
func TestGluedHardInstanceEndToEnd(t *testing.T) {
	l := lang.ProperColoring(3)
	parts, _, err := HardSequence(failingRunner{}, l, 3, 6, 1.0, nil, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	anchors, err := ScatteredAnchors(parts, 2, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := BuildGlued(parts, anchors)
	if err != nil {
		t.Fatal(err)
	}
	y, err := failingRunner{}.Run(gl.Instance, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &lang.Config{G: gl.Instance.G, X: gl.Instance.X, Y: y}
	ok, err := l.Contains(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("monochromatic coloring accepted on glued instance")
	}
	_ = local.RunView // keep the integration import honest
}
