package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// MoserTardosLLL is a distributed Moser–Tardos resampler for the paper's
// LLL example language (lang.LLL): every node holds one bit, and the bad
// event at v is that v's closed star is monochromatic. Following the
// distributed constructive LLL of Chung–Pettie–Su [6] in spirit, each
// phase
//
//  1. broadcasts bits (1 round),
//  2. detects violated events and floods them to radius 2 (2 rounds),
//  3. selects an independent set of violated events — identity-minimal
//     among violated events within distance 2, so selected stars are
//     disjoint — and resamples exactly those stars (1 round of resample
//     commands; owners redraw their bits from their own tapes).
//
// The algorithm runs a fixed number of phases; experiment E3/E10 measures
// the surviving bad events, and the f-resilient relaxation of the
// language is what Corollary 1 proves cannot be constructed in O(1)
// rounds. Phases = 0 degenerates to the plain zero-round random
// assignment.
type MoserTardosLLL struct {
	Phases int
}

// Name implements local.MessageAlgorithm.
func (m MoserTardosLLL) Name() string { return fmt.Sprintf("moser-tardos-lll(phases=%d)", m.Phases) }

// NewProcess implements local.MessageAlgorithm.
func (m MoserTardosLLL) NewProcess() local.Process { return &mtProc{phases: m.Phases} }

// Phase messages.
type mtBit struct{ B byte }
type mtViolated struct {
	// IDs of violated events known to the sender (their centers).
	Events []int64
}
type mtResample struct{}

type mtProc struct {
	phases int
	tape   *localrand.Tape
	id     int64
	bit    byte
	nbrBit []byte

	violated   bool
	seenEvents map[int64]bool
}

func (p *mtProc) Start(info local.NodeInfo) []local.Message {
	p.tape = info.Tape
	p.id = info.ID
	if p.tape.Bool() {
		p.bit = 1
	}
	p.nbrBit = make([]byte, info.Degree)
	if p.phases == 0 {
		return nil
	}
	return broadcast(mtBit{B: p.bit}, info.Degree)
}

func (p *mtProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	if p.phases == 0 {
		return nil, true
	}
	deg := len(received)
	phaseRound := (round-1)%4 + 1
	phase := (round-1)/4 + 1
	switch phaseRound {
	case 1: // bits arrived: detect own violation, announce violated events
		p.violated = true
		for port, m := range received {
			b := m.(mtBit).B
			p.nbrBit[port] = b
			if b != p.bit {
				p.violated = false
			}
		}
		if deg == 0 {
			p.violated = false
		}
		p.seenEvents = make(map[int64]bool)
		if p.violated {
			p.seenEvents[p.id] = true
		}
		return broadcast(mtViolated{Events: eventList(p.seenEvents)}, deg), false
	case 2: // first violation wave: gather, forward (reaches radius 2)
		for _, m := range received {
			for _, e := range m.(mtViolated).Events {
				p.seenEvents[e] = true
			}
		}
		return broadcast(mtViolated{Events: eventList(p.seenEvents)}, deg), false
	case 3: // second violation wave: select local minima, command resample
		for _, m := range received {
			for _, e := range m.(mtViolated).Events {
				p.seenEvents[e] = true
			}
		}
		selected := p.violated
		if selected {
			for e := range p.seenEvents {
				if e < p.id {
					selected = false
					break
				}
			}
		}
		if selected {
			// Resample own bit and command the star to resample.
			if p.tape.Bool() {
				p.bit = 1
			} else {
				p.bit = 0
			}
			return broadcast(mtResample{}, deg), false
		}
		return make([]local.Message, deg), false
	default: // case 0 mod 4: resample commands arrived; redraw, next phase
		for _, m := range received {
			if m == nil {
				continue
			}
			if _, ok := m.(mtResample); ok {
				if p.tape.Bool() {
					p.bit = 1
				} else {
					p.bit = 0
				}
				break // disjoint stars: at most one command possible
			}
		}
		if phase >= p.phases {
			return nil, true
		}
		return broadcast(mtBit{B: p.bit}, deg), false
	}
}

func (p *mtProc) Output() []byte { return lang.EncodeColor(int(p.bit)) }

func eventList(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}

// MoserTardosAlgorithm packages the resampler.
func MoserTardosAlgorithm(phases int) Algorithm {
	return MessageConstruction{Algo: MoserTardosLLL{Phases: phases}}
}
