package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// MoserTardosLLL is a distributed Moser–Tardos resampler for the paper's
// LLL example language (lang.LLL): every node holds one bit, and the bad
// event at v is that v's closed star is monochromatic. Following the
// distributed constructive LLL of Chung–Pettie–Su [6] in spirit, each
// phase
//
//  1. broadcasts bits (1 round),
//  2. detects violated events and floods them to radius 2 (2 rounds),
//  3. selects an independent set of violated events — identity-minimal
//     among violated events within distance 2, so selected stars are
//     disjoint — and resamples exactly those stars (1 round of resample
//     commands; owners redraw their bits from their own tapes).
//
// The algorithm runs a fixed number of phases; experiment E3/E10 measures
// the surviving bad events, and the f-resilient relaxation of the
// language is what Corollary 1 proves cannot be constructed in O(1)
// rounds. Phases = 0 degenerates to the plain zero-round random
// assignment.
type MoserTardosLLL struct {
	Phases int
}

// Name implements local.MessageAlgorithm.
func (m MoserTardosLLL) Name() string { return fmt.Sprintf("moser-tardos-lll(phases=%d)", m.Phases) }

// MsgWords implements local.WireAlgorithm: the widest message is the
// second violation wave, the union of the node's own violated event
// (at most one) with one event per neighbor — degree+1 words. Bit
// broadcasts are one word; resample commands are zero-word signals.
func (m MoserTardosLLL) MsgWords(degree int) int { return degree + 1 }

// NewWireProcess implements local.WireAlgorithm.
func (m MoserTardosLLL) NewWireProcess() local.WireProcess { return &mtProc{phases: m.Phases} }

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (m MoserTardosLLL) NewProcess() local.Process { return local.NewLegacyProcess(m) }

// Wire codec. The four-round phase schedule determines the message kind:
// bit broadcasts (one word, 0 or 1) arrive in phase round 1, violated
// event lists (one word per event identity, any count including zero) in
// phase rounds 2 and 3, resample commands (zero-word signals) in phase
// round 4.

// decodeMTBit rejects anything but a single 0/1 word.
func decodeMTBit(words []uint64) (byte, bool) {
	if len(words) != 1 || words[0] > 1 {
		return 0, false
	}
	return byte(words[0]), true
}

// broadcastEvents ships the violated-event set on every port. Event
// identities are words; a violated list may be empty, which still
// transmits (an empty announcement is how "nothing violated here"
// propagates, exactly as the boxed mtViolated{} did).
func broadcastEvents(out *local.Outbox, events map[int64]bool) {
	for port := 0; port < out.Degree(); port++ {
		out.Signal(port)
		for e := range events {
			out.Append(port, uint64(e))
		}
	}
}

// gatherEvents unions a violated payload into the seen set.
func gatherEvents(seen map[int64]bool, words []uint64) {
	for _, w := range words {
		seen[int64(w)] = true
	}
}

// decodeMTResample rejects any resample command carrying payload words.
func decodeMTResample(words []uint64) bool { return len(words) == 0 }

type mtProc struct {
	phases int
	tape   *localrand.Tape
	id     int64
	bit    byte
	nbrBit []byte

	violated   bool
	seenEvents map[int64]bool
}

// ResetProcess implements local.ResetProcess: the neighbor-bit buffer
// and the event set keep their storage (Start reinitializes them), the
// tape and execution state are dropped.
func (p *mtProc) ResetProcess() {
	p.tape = nil
	p.id = 0
	p.bit = 0
	p.violated = false
}

func (p *mtProc) Start(info local.NodeInfo, out *local.Outbox) {
	p.tape = info.Tape
	p.id = info.ID
	if p.tape.Bool() {
		p.bit = 1
	}
	p.nbrBit = reuseSlice(p.nbrBit, info.Degree)
	clear(p.nbrBit)
	if p.seenEvents == nil {
		p.seenEvents = make(map[int64]bool, info.Degree+1)
	} else {
		clear(p.seenEvents)
	}
	if p.phases == 0 {
		return
	}
	out.Broadcast(uint64(p.bit))
}

func (p *mtProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	if p.phases == 0 {
		return true
	}
	deg := in.Degree()
	phaseRound := (round-1)%4 + 1
	phase := (round-1)/4 + 1
	switch phaseRound {
	case 1: // bits arrived: detect own violation, announce violated events
		p.violated = true
		for port := 0; port < deg; port++ {
			b, ok := decodeMTBit(in.Words(port))
			if !ok {
				panic("construct: Moser-Tardos received a malformed bit")
			}
			p.nbrBit[port] = b
			if b != p.bit {
				p.violated = false
			}
		}
		if deg == 0 {
			p.violated = false
		}
		clear(p.seenEvents)
		if p.violated {
			p.seenEvents[p.id] = true
		}
		broadcastEvents(out, p.seenEvents)
		return false
	case 2: // first violation wave: gather, forward (reaches radius 2)
		for port := 0; port < deg; port++ {
			if !in.Has(port) {
				panic("construct: Moser-Tardos missing a violation wave")
			}
			gatherEvents(p.seenEvents, in.Words(port))
		}
		broadcastEvents(out, p.seenEvents)
		return false
	case 3: // second violation wave: select local minima, command resample
		for port := 0; port < deg; port++ {
			if !in.Has(port) {
				panic("construct: Moser-Tardos missing a violation wave")
			}
			gatherEvents(p.seenEvents, in.Words(port))
		}
		selected := p.violated
		if selected {
			for e := range p.seenEvents {
				if e < p.id {
					selected = false
					break
				}
			}
		}
		if selected {
			// Resample own bit and command the star to resample.
			if p.tape.Bool() {
				p.bit = 1
			} else {
				p.bit = 0
			}
			out.SignalAll()
		}
		return false
	default: // case 0 mod 4: resample commands arrived; redraw, next phase
		for port := 0; port < deg; port++ {
			if !in.Has(port) {
				continue
			}
			if !decodeMTResample(in.Words(port)) {
				panic("construct: Moser-Tardos received a malformed resample command")
			}
			if p.tape.Bool() {
				p.bit = 1
			} else {
				p.bit = 0
			}
			break // disjoint stars: at most one command possible
		}
		if phase >= p.phases {
			return true
		}
		out.Broadcast(uint64(p.bit))
		return false
	}
}

func (p *mtProc) Output() []byte { return lang.EncodeColor(int(p.bit)) }

// MoserTardosAlgorithm packages the resampler.
func MoserTardosAlgorithm(phases int) Algorithm {
	return MessageConstruction{Algo: MoserTardosLLL{Phases: phases}}
}
