package construct

import "rlnc/internal/local"

// The wire algorithms below also implement the engine's lane-vectorized
// stepping seam (local.VecAlgorithm): one SoA process per node owns
// every lane's state and steps them in a single call per round. Batched
// executions wider than one lane pick the vector path up automatically —
// through the remote registry too, which reconstructs these same struct
// values on shard workers — and the scalar WireProcess remains the
// width-1 (Engine) path and the local.ScalarOnly reference the
// differential suite pins byte-identical outputs against.
var (
	_ local.VecAlgorithm = LubyMIS{}
	_ local.VecAlgorithm = retryAlgo{}
	_ local.VecAlgorithm = ColeVishkin{}
)

// vecRow returns s resized to k entries, reusing the backing array when
// it fits (contents are then stale — StartVec rewrites every lane it
// uses) and allocating otherwise. Warm pooled processes never grow, so
// the steady-state trial loop stays allocation-free.
func vecRow[T any](s []T, k int) []T {
	if cap(s) >= k {
		return s[:k]
	}
	return make([]T, k)
}
