package construct

import (
	"bytes"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
)

func TestGreedyMISFromColoring(t *testing.T) {
	l := lang.MIS()
	// Feed a known proper coloring of C9 as input.
	g := graph.Cycle(9)
	x := make([][]byte, 9)
	for v := 0; v < 9; v++ {
		x[v] = lang.EncodeColor(v % 3)
	}
	// n=9 divisible by 3: v%3 proper around the wrap (8 -> 0: 2 vs 0).
	in := &lang.Instance{G: g, X: x, ID: ids.Consecutive(9)}
	y, err := (MessageConstruction{Algo: GreedyMISFromColoring{Q: 3}}).Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := l.Contains(&lang.Config{G: g, X: x, Y: y}); !ok {
		t.Fatal("greedy conversion did not produce a valid MIS")
	}
	// Color-0 nodes must all be in (first class joins unconditionally).
	for v := 0; v < 9; v += 3 {
		sel, _ := lang.DecodeSelected(y[v])
		if !sel {
			t.Errorf("color-0 node %d not selected", v)
		}
	}
}

func TestDeterministicRingMIS(t *testing.T) {
	l := lang.MIS()
	for _, n := range []int{3, 5, 16, 101, 256} {
		for seed := uint64(0); seed < 3; seed++ {
			id := ids.RandomPerm(n, seed)
			in := instanceOn(t, graph.Cycle(n), id)
			y, err := DeterministicRingMIS(63).Run(in, nil)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if ok, _ := l.Contains(outputConfig(in, y)); !ok {
				t.Fatalf("n=%d seed=%d: invalid deterministic MIS", n, seed)
			}
		}
	}
}

func TestDeterministicRingMISIsDeterministic(t *testing.T) {
	in := instanceOn(t, graph.Cycle(32), ids.RandomPerm(32, 4))
	y1, err1 := DeterministicRingMIS(63).Run(in, nil)
	y2, err2 := DeterministicRingMIS(63).Run(in, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := range y1 {
		if !bytes.Equal(y1[v], y2[v]) {
			t.Fatalf("deterministic MIS differs across runs at node %d", v)
		}
	}
}

func TestDeterministicRingWeakColoring(t *testing.T) {
	l := lang.WeakColoring(2)
	for _, n := range []int{4, 9, 64} {
		in := instanceOn(t, graph.Cycle(n), ids.RandomPerm(n, 9))
		y, err := DeterministicRingWeakColoring(63).Run(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := l.Contains(outputConfig(in, y)); !ok {
			t.Fatalf("n=%d: invalid weak 2-coloring", n)
		}
	}
}

func TestGreedyMISPanicsOnBadInput(t *testing.T) {
	g := graph.Path(3)
	in := &lang.Instance{G: g, X: lang.EmptyInputs(3), ID: ids.Consecutive(3)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing input coloring")
		}
	}()
	_, _ = (MessageConstruction{Algo: GreedyMISFromColoring{Q: 3}}).Run(in, nil)
}
