package construct

import (
	"fmt"
	"math/bits"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// ColeVishkin is the deterministic 3-coloring algorithm for oriented
// cycles, matching the Ω(log* n) lower bound of Linial [25] and Naor [27]
// discussed in §1.3. It relies on the cycle generator's port orientation
// (port 0 = successor, port 1 = predecessor), the "common sense of
// direction" the paper grants the ring.
//
// Phase 1 (color reduction): colors start as 64-bit identities; in each
// round a node compares its color with its successor's, finds the lowest
// bit position i where they differ, and recolors to 2i + bit(i). Starting
// from 64-bit values the palette shrinks to {0..5} in IterationsFor64
// rounds — from a universe of b-bit identities it takes Θ(log* b) rounds,
// which is how experiment E7 exhibits the log* growth.
//
// Phase 2 (shift-down): three rounds eliminate colors 5, 4, 3 by letting
// each such node pick the smallest color of {0,1,2} absent from its two
// neighbors.
//
// Nodes must agree on the iteration count, which depends only on the size
// of the identity universe; the paper's lower-bound discussion grants the
// ring knowledge of n (§1.3), and MaxIDBits plays that role here.
type ColeVishkin struct {
	// MaxIDBits bounds the identity universe: ids < 2^MaxIDBits.
	MaxIDBits int
}

// Name implements the algorithm naming convention.
func (cv ColeVishkin) Name() string { return fmt.Sprintf("cole-vishkin(b=%d)", cv.MaxIDBits) }

// cvStep performs one reduction: the lowest differing bit position i
// against the successor, recolored to 2i + ownBit.
func cvStep(own, succ uint64) uint64 {
	diff := own ^ succ
	if diff == 0 {
		panic("construct: Cole-Vishkin invariant broken (equal adjacent colors)")
	}
	i := uint(bits.TrailingZeros64(diff))
	bit := (own >> i) & 1
	return uint64(2*i) + bit
}

// paletteAfter returns the palette bound after one reduction from a
// palette of the given size: colors below q occupy bits(q-1) bits, the
// differing position is at most bits-1, so new colors are < 2*bits.
func paletteAfter(q uint64) uint64 {
	if q <= 6 {
		return 6
	}
	b := uint64(bits.Len64(q - 1))
	return 2 * b
}

// ReductionRounds returns the number of cvStep iterations needed to bring
// a palette of 2^b identities down to {0..5} — the log* b quantity that
// experiment E7 tabulates.
func ReductionRounds(b int) int {
	if b < 1 {
		b = 1
	}
	q := uint64(1) << uint(min(63, b))
	if b >= 64 {
		q = ^uint64(0)
	}
	rounds := 0
	for q > 6 {
		q = paletteAfter(q)
		rounds++
	}
	return rounds
}

// Rounds returns the total round count: one reduction per round (the
// first exchange happens in Start) plus three shift-down rounds.
func (cv ColeVishkin) Rounds() int { return ReductionRounds(cv.MaxIDBits) + 3 }

// MsgWords implements local.WireAlgorithm: one word, the current color.
func (cv ColeVishkin) MsgWords(int) int { return 1 }

// NewWireProcess implements local.WireAlgorithm.
func (cv ColeVishkin) NewWireProcess() local.WireProcess {
	return &cvProc{reductions: ReductionRounds(cv.MaxIDBits)}
}

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (cv ColeVishkin) NewProcess() local.Process { return local.NewLegacyProcess(cv) }

type cvProc struct {
	reductions int
	color      uint64
	phase2At   int // round index where shift-down begins
}

// Cycle port convention (see graph.Cycle): port 0 = successor,
// port 1 = predecessor.
const (
	succPort = 0
	predPort = 1
)

// decodeCVColor rejects anything but a single color word.
func decodeCVColor(words []uint64) (uint64, bool) {
	if len(words) != 1 {
		return 0, false
	}
	return words[0], true
}

// mustCVColor is decodeCVColor for the round loop, where a missing or
// malformed neighbor color is a broken invariant (the ring is
// synchronous: both neighbors send every round until the common halt).
func mustCVColor(in *local.Inbox, port int) uint64 {
	c, ok := decodeCVColor(in.Words(port))
	if !ok {
		panic("construct: Cole-Vishkin received a malformed color word")
	}
	return c
}

// ResetProcess implements local.ResetProcess, keeping the reduction
// schedule while dropping all execution state.
func (p *cvProc) ResetProcess() { *p = cvProc{reductions: p.reductions} }

func (p *cvProc) Start(info local.NodeInfo, out *local.Outbox) {
	if info.Degree != 2 {
		panic("construct: Cole-Vishkin requires a cycle (degree 2 everywhere)")
	}
	p.color = uint64(info.ID)
	p.phase2At = p.reductions + 1
	// Every round sends the current color both ways; only the successor's
	// value is used during reduction, both during shift-down.
	out.Broadcast(p.color)
}

func (p *cvProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	succC := mustCVColor(in, succPort)
	predC := mustCVColor(in, predPort)
	switch {
	case round <= p.reductions:
		p.color = cvStep(p.color, succC)
	default:
		// Shift-down: rounds phase2At, phase2At+1, phase2At+2 remove
		// colors 5, 4, 3 in that order.
		target := uint64(5 - (round - p.phase2At))
		if p.color == target {
			p.color = smallestFree(predC, succC)
		}
		if round >= p.phase2At+2 {
			return true
		}
	}
	out.Broadcast(p.color)
	return false
}

func (p *cvProc) Output() []byte {
	return lang.EncodeColor(int(p.color))
}

// NewVecProcess implements local.VecAlgorithm: one SoA process per node
// steps every lane of a batch in a single call per round.
func (cv ColeVishkin) NewVecProcess() local.VecProcess {
	return &cvVec{reductions: ReductionRounds(cv.MaxIDBits)}
}

// cvVec is cvProc across all lanes as struct-of-arrays. The algorithm is
// deterministic, so the per-lane state is just the color word; the
// reduction schedule is shared by every lane.
type cvVec struct {
	reductions int
	phase2At   int // round index where shift-down begins
	color      []uint64
	act        []bool // scratch: lanes this call acts for
}

// ResetVec implements local.ResetVecProcess, keeping the reduction
// schedule while dropping all execution state.
func (p *cvVec) ResetVec() { p.phase2At = 0 }

func (p *cvVec) StartVec(info *local.VecNodeInfo, out *local.OutboxVec) {
	if info.Degree() != 2 {
		panic("construct: Cole-Vishkin requires a cycle (degree 2 everywhere)")
	}
	k := info.Lanes()
	p.color = vecRow(p.color, k)
	p.act = vecRow(p.act, k)
	p.phase2At = p.reductions + 1
	for b := 0; b < k; b++ {
		p.color[b] = uint64(info.ID(b))
		p.act[b] = true
	}
	// Every round sends the current color both ways; only the successor's
	// value is used during reduction, both during shift-down.
	out.BroadcastRow(p.color, p.act)
}

// mustCVColorVec is mustCVColor against a lane's slab row: a missing or
// malformed neighbor color is a broken invariant, exactly as on the
// scalar path.
func mustCVColorVec(lens []int32, words []uint64, b, stride int) uint64 {
	if lens[b] != 2 {
		panic("construct: Cole-Vishkin received a malformed color word")
	}
	return words[b*stride]
}

func (p *cvVec) StepVec(round int, in *local.InboxVec, out *local.OutboxVec, done []bool) {
	k, mask := in.Lanes(), in.Mask()
	act := p.act[:k]
	for b := 0; b < k; b++ {
		act[b] = !done[b] && (mask == nil || !mask[b])
	}
	succLens := in.LensRow(succPort)
	succWords, succStride := in.WordBlock(succPort)
	predLens := in.LensRow(predPort)
	predWords, predStride := in.WordBlock(predPort)
	reducing := round <= p.reductions
	var target uint64
	if !reducing {
		// Shift-down: rounds phase2At, phase2At+1, phase2At+2 remove
		// colors 5, 4, 3 in that order.
		target = uint64(5 - (round - p.phase2At))
	}
	for b := 0; b < k; b++ {
		if !act[b] {
			continue
		}
		succC := mustCVColorVec(succLens, succWords, b, succStride)
		predC := mustCVColorVec(predLens, predWords, b, predStride)
		if reducing {
			p.color[b] = cvStep(p.color[b], succC)
		} else if p.color[b] == target {
			p.color[b] = smallestFree(predC, succC)
		}
	}
	if round >= p.phase2At+2 {
		for b := 0; b < k; b++ {
			if act[b] {
				done[b] = true
			}
		}
		return
	}
	out.BroadcastRow(p.color, act)
}

func (p *cvVec) OutputVec(b int) []byte { return lang.EncodeColor(int(p.color[b])) }

// smallestFree returns the smallest color in {0,1,2} differing from both
// arguments; it exists because only two values are excluded.
func smallestFree(a, b uint64) uint64 {
	for c := uint64(0); c <= 2; c++ {
		if c != a && c != b {
			return c
		}
	}
	panic("construct: no free color in {0,1,2}")
}

// ColeVishkinColoring packages the algorithm with run options.
func ColeVishkinColoring(maxIDBits int) Algorithm {
	return MessageConstruction{Algo: ColeVishkin{MaxIDBits: maxIDBits}}
}
