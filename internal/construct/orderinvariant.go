package construct

import (
	"fmt"
	"sort"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// This file provides the corpus of order-invariant construction
// algorithms used by the lower-bound experiments (E3, E10, E14). An
// order-invariant algorithm's output at a node depends only on the
// structure of its ball, the inputs, and the relative order of the
// identities — never their values (§2.1.1). By Claim 1 (from [3]),
// studying constant-time deterministic algorithms reduces to studying
// these; by the Section 4 argument, on a cycle with consecutive
// identities every interior node sees the same order pattern, so any
// order-invariant algorithm mono-colors n−(2t−1) nodes — the engine of
// the f-resilience impossibility.

// OrderInvariant marks algorithms whose Output provably ignores identity
// values. The marker is validated by orderinv.CheckInvariance in tests.
type OrderInvariant interface {
	local.ViewAlgorithm
	OrderInvariantAlgorithm()
}

// rankPattern returns the ball-local identity ranks: rank[i] is the
// position of IDs[i] in the sorted order of all ball identities.
func rankPattern(ids []int64) []int {
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
	rank := make([]int, len(ids))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}

// RankColor colors each node by the rank of its identity within its
// radius-T ball, modulo Q. It is the natural "greedy by local seniority"
// order-invariant coloring.
type RankColor struct {
	Q int
	T int
}

// Name implements local.ViewAlgorithm.
func (a RankColor) Name() string { return fmt.Sprintf("oi-rank-color(q=%d,t=%d)", a.Q, a.T) }

// Radius implements local.ViewAlgorithm.
func (a RankColor) Radius() int { return a.T }

// Output implements local.ViewAlgorithm.
func (a RankColor) Output(v *local.View) []byte {
	rank := rankPattern(v.IDs)
	return lang.EncodeColor(rank[0] % a.Q)
}

// OrderInvariantAlgorithm implements OrderInvariant.
func (RankColor) OrderInvariantAlgorithm() {}

// PatternHashColor hashes the full order pattern of the ball (ranks in
// BFS order plus distances) into a color. Different patterns may get
// different colors, but equal patterns always collide — which is exactly
// what dooms it on consecutive-identity cycles.
type PatternHashColor struct {
	Q    int
	T    int
	Salt uint64
}

// Name implements local.ViewAlgorithm.
func (a PatternHashColor) Name() string {
	return fmt.Sprintf("oi-pattern-hash(q=%d,t=%d,salt=%d)", a.Q, a.T, a.Salt)
}

// Radius implements local.ViewAlgorithm.
func (a PatternHashColor) Radius() int { return a.T }

// Output implements local.ViewAlgorithm.
func (a PatternHashColor) Output(v *local.View) []byte {
	rank := rankPattern(v.IDs)
	h := a.Salt*0x9e3779b97f4a7c15 + 0x85eb_ca6b
	for i, r := range rank {
		h ^= uint64(r+1) * uint64(v.Ball.Dist[i]+3)
		h *= 0x100000001b3
	}
	return lang.EncodeColor(int(h % uint64(a.Q)))
}

// OrderInvariantAlgorithm implements OrderInvariant.
func (PatternHashColor) OrderInvariantAlgorithm() {}

// LocalExtremaColor 3-colors by local comparison: local minimum -> 0,
// local maximum -> 1, otherwise 2. Order-invariant with radius 1; on a
// consecutive-identity cycle all interior nodes are neither minima nor
// maxima, so nearly everything gets color 2.
type LocalExtremaColor struct{}

// Name implements local.ViewAlgorithm.
func (LocalExtremaColor) Name() string { return "oi-local-extrema" }

// Radius implements local.ViewAlgorithm.
func (LocalExtremaColor) Radius() int { return 1 }

// Output implements local.ViewAlgorithm.
func (LocalExtremaColor) Output(v *local.View) []byte {
	isMin, isMax := true, true
	for _, u := range v.Ball.G.Neighbors(0) {
		if v.IDs[u] < v.IDs[0] {
			isMin = false
		}
		if v.IDs[u] > v.IDs[0] {
			isMax = false
		}
	}
	switch {
	case isMin:
		return lang.EncodeColor(0)
	case isMax:
		return lang.EncodeColor(1)
	default:
		return lang.EncodeColor(2)
	}
}

// OrderInvariantAlgorithm implements OrderInvariant.
func (LocalExtremaColor) OrderInvariantAlgorithm() {}

// OrderInvariantCorpus returns a spread of order-invariant coloring
// algorithms with palette q and radius at most t. The corpus plays the
// role of the finite family of order-invariant algorithms enumerated in
// the proof of Claim 2 (N = Σ nᵢ! is finite under the F_k promise); the
// hard-instance search of package glue finds, for each corpus member, an
// instance on which it fails.
func OrderInvariantCorpus(q, t int) []OrderInvariant {
	corpus := []OrderInvariant{
		LocalExtremaColor{},
	}
	for radius := 1; radius <= t; radius++ {
		corpus = append(corpus, RankColor{Q: q, T: radius})
		for salt := uint64(0); salt < 3; salt++ {
			corpus = append(corpus, PatternHashColor{Q: q, T: radius, Salt: salt})
		}
	}
	return corpus
}
