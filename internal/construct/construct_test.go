package construct

import (
	"bytes"
	"fmt"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

func instanceOn(t testing.TB, g *graph.Graph, id ids.Assignment) *lang.Instance {
	t.Helper()
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), id)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func drawOf(seed, idx uint64) *localrand.Draw {
	d := localrand.NewTapeSpace(seed).Draw(idx)
	return &d
}

func outputConfig(in *lang.Instance, y [][]byte) *lang.Config {
	return &lang.Config{G: in.G, X: in.X, Y: y}
}

func TestRandomColoringRange(t *testing.T) {
	in := instanceOn(t, graph.Cycle(50), ids.Consecutive(50))
	y, err := RandomColoring(3).Run(in, drawOf(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range y {
		c, err := lang.DecodeColor(out)
		if err != nil || c >= 3 {
			t.Fatalf("node %d: color %d err %v", v, c, err)
		}
	}
}

func TestRandomColoringDeterministicPerDraw(t *testing.T) {
	in := instanceOn(t, graph.Cycle(20), ids.Consecutive(20))
	y1, _ := RandomColoring(3).Run(in, drawOf(1, 7))
	y2, _ := RandomColoring(3).Run(in, drawOf(1, 7))
	y3, _ := RandomColoring(3).Run(in, drawOf(1, 8))
	same := true
	for v := range y1 {
		if !bytes.Equal(y1[v], y2[v]) {
			t.Fatalf("same draw differs at %d", v)
		}
		if !bytes.Equal(y1[v], y3[v]) {
			same = false
		}
	}
	if same {
		t.Error("different draws produced identical colorings")
	}
}

func TestRandomColoringBadFraction(t *testing.T) {
	// §1.1: uniform random 3-coloring of the ring leaves each node
	// conflicted with probability 1 - (2/3)^2 = 5/9 in expectation.
	const n, trials = 300, 60
	l := lang.ProperColoring(3)
	in := instanceOn(t, graph.Cycle(n), ids.Consecutive(n))
	total := 0
	for i := 0; i < trials; i++ {
		y, _ := RandomColoring(3).Run(in, drawOf(3, uint64(i)))
		total += l.CountBadBalls(outputConfig(in, y))
	}
	frac := float64(total) / float64(n*trials)
	if frac < 0.50 || frac > 0.61 {
		t.Errorf("bad fraction = %.3f, want ≈ 5/9 ≈ 0.556", frac)
	}
}

func TestRetryColoringImproves(t *testing.T) {
	const n, trials = 240, 40
	l := lang.ProperColoring(3)
	in := instanceOn(t, graph.Cycle(n), ids.Consecutive(n))
	fracAt := func(T int) float64 {
		total := 0
		for i := 0; i < trials; i++ {
			y, err := (RetryColoring{Q: 3, T: T}).Run(in, drawOf(5, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += l.CountBadBalls(outputConfig(in, y))
		}
		return float64(total) / float64(n*trials)
	}
	f0, f3, f6 := fracAt(0), fracAt(3), fracAt(6)
	if !(f0 > f3 && f3 > f6) {
		t.Errorf("retry did not improve: f0=%.3f f3=%.3f f6=%.3f", f0, f3, f6)
	}
	if f6 > 0.25 {
		t.Errorf("after 6 retries bad fraction still %.3f", f6)
	}
}

func TestColeVishkinProper(t *testing.T) {
	l := lang.ProperColoring(3)
	for _, n := range []int{3, 4, 5, 8, 33, 128, 1001} {
		for seed := uint64(0); seed < 3; seed++ {
			id := ids.RandomPerm(n, seed)
			in := instanceOn(t, graph.Cycle(n), id)
			algo := ColeVishkin{MaxIDBits: idBits(id.Max())}
			res, err := local.RunMessage(in, algo, nil, local.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ok, err := l.Contains(outputConfig(in, res.Y))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("n=%d seed=%d: CV output not a proper 3-coloring", n, seed)
			}
			if res.Stats.Rounds != algo.Rounds() {
				t.Errorf("n=%d: rounds=%d, want %d", n, res.Stats.Rounds, algo.Rounds())
			}
		}
	}
}

func TestColeVishkinSparseIDs(t *testing.T) {
	l := lang.ProperColoring(3)
	// Identities drawn from a huge universe: more reduction rounds needed.
	id, err := ids.RandomFromUniverse(60, 1<<60, 11)
	if err != nil {
		t.Fatal(err)
	}
	in := instanceOn(t, graph.Cycle(60), id)
	algo := ColeVishkin{MaxIDBits: 62}
	res, err := local.RunMessage(in, algo, nil, local.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := l.Contains(outputConfig(in, res.Y)); !ok {
		t.Fatal("CV on sparse ids not proper")
	}
}

func TestReductionRoundsShape(t *testing.T) {
	// log*-type growth: few rounds, non-decreasing in the bit width.
	prev := 0
	for _, b := range []int{2, 3, 8, 16, 32, 64} {
		r := ReductionRounds(b)
		if r < prev {
			t.Errorf("ReductionRounds(%d) = %d decreased below %d", b, r, prev)
		}
		prev = r
	}
	if r := ReductionRounds(64); r < 3 || r > 6 {
		t.Errorf("ReductionRounds(64) = %d, want small constant in [3,6]", r)
	}
	if r := ReductionRounds(3); r < 1 || r > 3 {
		t.Errorf("ReductionRounds(3) = %d", r)
	}
}

func TestLinialColoringProper(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-24", graph.Cycle(24)},
		{"tree", graph.CompleteTree(3, 3)},
		{"torus", graph.Torus(4, 5)},
		{"petersen", graph.Petersen()},
	}
	if g, err := graph.RandomRegular(30, 4, 7); err == nil {
		cases = append(cases, struct {
			name string
			g    *graph.Graph
		}{"4-regular", g})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			id := ids.RandomPerm(n, 13)
			in := instanceOn(t, tc.g, id)
			delta := tc.g.MaxDegree()
			algo := LinialReduction{MaxDegree: delta, MaxIDBits: idBits(id.Max()), TargetColors: delta + 1}
			res, err := local.RunMessage(in, algo, nil, local.RunOptions{MaxRounds: 4 * algo.Rounds()})
			if err != nil {
				t.Fatal(err)
			}
			l := lang.ProperColoring(delta + 1)
			if ok, _ := l.Contains(outputConfig(in, res.Y)); !ok {
				t.Fatalf("Linial output not a proper %d-coloring", delta+1)
			}
		})
	}
}

func TestLinialRoundsIndependentOfN(t *testing.T) {
	// Constant-time under the promise: rounds depend on Δ and the ID
	// universe, not on n.
	mk := func(n int) int {
		algo := LinialReduction{MaxDegree: 2, MaxIDBits: 32, TargetColors: 3}
		return algo.Rounds()
	}
	if mk(30) != mk(3000) {
		t.Error("Linial round count depends on n")
	}
}

func TestLinialProperAfterEveryRound(t *testing.T) {
	// Run the reduction with increasing StopAfter and verify the
	// invariant: the coloring is proper at every stage (treating current
	// palette colors as the coloring).
	g := graph.Torus(3, 4)
	id := ids.RandomPerm(g.N(), 3)
	in := instanceOn(t, g, id)
	delta := g.MaxDegree()
	algo := LinialReduction{MaxDegree: delta, MaxIDBits: idBits(id.Max()), TargetColors: delta + 1}
	full, err := local.RunMessage(in, algo, nil, local.RunOptions{MaxRounds: 4 * algo.Rounds()})
	if err != nil {
		t.Fatal(err)
	}
	_ = full
	// The algorithm panics internally if the proper-coloring invariant
	// ever breaks (reduceOnce checks neighbor equality), so reaching here
	// is the assertion.
}

func TestLubyMISValid(t *testing.T) {
	l := lang.MIS()
	graphs := []*graph.Graph{
		graph.Cycle(31),
		graph.Path(17),
		graph.Complete(9),
		graph.Star(12),
		graph.Torus(4, 4),
		graph.CompleteTree(2, 4),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 4; seed++ {
			in := instanceOn(t, g, ids.RandomPerm(g.N(), seed+100))
			y, err := LubyMISAlgorithm().Run(in, drawOf(77, seed))
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if ok, _ := l.Contains(outputConfig(in, y)); !ok {
				t.Fatalf("graph %d seed %d: not a valid MIS", gi, seed)
			}
		}
	}
}

func TestEdgeLubyMatchingValid(t *testing.T) {
	l := lang.MaximalMatching()
	graphs := []*graph.Graph{
		graph.Cycle(20),
		graph.Path(9),
		graph.Complete(7),
		graph.Star(8),
		graph.Grid(4, 5),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 4; seed++ {
			in := instanceOn(t, g, ids.RandomPerm(g.N(), seed+30))
			y, err := MaximalMatchingAlgorithm().Run(in, drawOf(88, seed))
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if ok, _ := l.Contains(outputConfig(in, y)); !ok {
				t.Fatalf("graph %d seed %d: not a maximal matching", gi, seed)
			}
		}
	}
}

func TestWeakColoringViaMISValid(t *testing.T) {
	l := lang.WeakColoring(2)
	graphs := []*graph.Graph{
		graph.Cycle(25),
		graph.CompleteTree(3, 3),
		graph.Petersen(),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 3; seed++ {
			in := instanceOn(t, g, ids.RandomPerm(g.N(), seed+60))
			y, err := WeakColoringViaMIS().Run(in, drawOf(99, seed))
			if err != nil {
				t.Fatalf("graph %d: %v", gi, err)
			}
			if ok, _ := l.Contains(outputConfig(in, y)); !ok {
				t.Fatalf("graph %d seed %d: not a weak 2-coloring", gi, seed)
			}
		}
	}
}

func TestMoserTardosReducesViolations(t *testing.T) {
	l := lang.LLL()
	g := graph.Cycle(180)
	in := instanceOn(t, g, ids.Consecutive(180))
	countAt := func(phases int) int {
		total := 0
		for seed := uint64(0); seed < 20; seed++ {
			y, err := MoserTardosAlgorithm(phases).Run(in, drawOf(111, seed))
			if err != nil {
				t.Fatal(err)
			}
			total += l.CountBadBalls(outputConfig(in, y))
		}
		return total
	}
	v0, v4 := countAt(0), countAt(4)
	if v4 >= v0 {
		t.Errorf("Moser-Tardos did not reduce violations: %d -> %d", v0, v4)
	}
	if v0 == 0 {
		t.Error("zero-phase run suspiciously violation-free")
	}
}

func TestMoserTardosOutputsBits(t *testing.T) {
	in := instanceOn(t, graph.Path(10), ids.Consecutive(10))
	y, err := MoserTardosAlgorithm(2).Run(in, drawOf(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range y {
		c, err := lang.DecodeColor(out)
		if err != nil || c > 1 {
			t.Fatalf("node %d: output %v not a bit", v, out)
		}
	}
}

// Order-invariance check: order-preserving identity remaps never change
// outputs of corpus members.
func TestOrderInvariantCorpusInvariance(t *testing.T) {
	corpus := OrderInvariantCorpus(3, 2)
	if len(corpus) < 5 {
		t.Fatalf("corpus too small: %d", len(corpus))
	}
	g := graph.Cycle(12)
	base := ids.RandomPerm(12, 5)
	remapped, err := base.RemapPreservingOrder([]int64{
		1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700, 1800, 1900, 2000, 2100,
	})
	if err != nil {
		t.Fatal(err)
	}
	inA := instanceOn(t, g, base)
	inB := instanceOn(t, g, remapped)
	for _, algo := range corpus {
		ya := local.RunView(inA, algo, nil)
		yb := local.RunView(inB, algo, nil)
		for v := range ya {
			if !bytes.Equal(ya[v], yb[v]) {
				t.Errorf("%s: output changed under order-preserving remap at node %d", algo.Name(), v)
			}
		}
	}
}

func TestOrderInvariantCorpusMonochromesConsecutiveCycle(t *testing.T) {
	// The Section 4 argument: on consecutive-identity cycles, interior
	// balls share one order pattern, so order-invariant algorithms output
	// one color on at least n-(2t-1) nodes... here verified directly.
	n := 64
	g := graph.Cycle(n)
	in := instanceOn(t, g, ids.Consecutive(n))
	for _, algo := range OrderInvariantCorpus(3, 2) {
		tRad := algo.Radius()
		y := local.RunView(in, algo, nil)
		counts := map[string]int{}
		for _, out := range y {
			counts[string(out)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if max < n-(2*tRad+1) {
			t.Errorf("%s: largest color class %d < n-(2t+1) = %d", algo.Name(), max, n-(2*tRad+1))
		}
	}
}

func TestPipelineComposition(t *testing.T) {
	// Stage 1 writes color 1 everywhere; stage 2 increments what it reads.
	stage := func(name string, f func(v *local.View) []byte) Algorithm {
		return ViewConstruction{Algo: local.ViewFunc{AlgoName: name, R: 0, F: f}}
	}
	p := Pipeline{Stages: []Algorithm{
		stage("ones", func(v *local.View) []byte { return lang.EncodeColor(1) }),
		stage("incr", func(v *local.View) []byte {
			c, _ := lang.DecodeColor(v.X[0])
			return lang.EncodeColor(c + 1)
		}),
	}}
	in := instanceOn(t, graph.Path(4), ids.Consecutive(4))
	y, err := p.Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range y {
		if c, _ := lang.DecodeColor(y[v]); c != 2 {
			t.Fatalf("node %d: color %d, want 2", v, c)
		}
	}
	if p.Name() == "" {
		t.Error("pipeline name empty")
	}
	empty := Pipeline{}
	if _, err := empty.Run(in, nil); err == nil {
		t.Error("empty pipeline must error")
	}
}

func TestPipelineStagesGetIndependentRandomness(t *testing.T) {
	record := func(v *local.View) []byte {
		return []byte(fmt.Sprintf("%d", v.Tape().Uint64()%1000))
	}
	p := Pipeline{Stages: []Algorithm{
		ViewConstruction{Algo: local.ViewFunc{AlgoName: "a", R: 0, F: record}},
		ViewConstruction{Algo: local.ViewFunc{AlgoName: "b", R: 0, F: record}},
	}}
	in := instanceOn(t, graph.Path(2), ids.Consecutive(2))
	y, err := p.Run(in, drawOf(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// The second stage reads stage 1's output as input; if the stages
	// shared randomness, output would equal input deterministically.
	if string(y[0]) == "" {
		t.Fatal("no output")
	}
}
