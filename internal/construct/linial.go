package construct

import (
	"fmt"
	"math/bits"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// This file implements Linial-style deterministic color reduction for
// general bounded-degree graphs: the O(log* n)-round (Δ+1)-coloring
// machinery underlying the upper-bound side of the locality discussion in
// §1.3. The construction uses polynomial cover-free families over a prime
// field: a proper coloring with palette [q] is mapped, in ONE round, to a
// proper coloring with palette [p²], where p is a prime chosen so that
// p > Δ·d and p^{d+1} >= q for a suitable degree d.
//
// Why it works: encode each color c < q as a polynomial f_c of degree <= d
// over F_p via the base-p digits of c. Distinct colors give distinct
// polynomials, and two distinct polynomials of degree <= d agree on at
// most d points. A node with at most Δ neighbors therefore has at most
// Δ·d "collision" points, so some a ∈ F_p has f_c(a) ≠ f_{c_u}(a) for all
// neighbors u; the new color (a, f_c(a)) < p² is proper. Iterating shrinks
// any palette to O(Δ² log² Δ)-ish in Θ(log* q) rounds; a final greedy
// phase walks the palette down to Δ+1 one color per round.

// smallestPrimeAtLeast returns the least prime >= n (n >= 2).
func smallestPrimeAtLeast(n int) int {
	if n < 2 {
		n = 2
	}
	for {
		if isPrime(n) {
			return n
		}
		n++
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// satPow returns p^e, saturating at the maximum uint64.
func satPow(p uint64, e int) uint64 {
	result := uint64(1)
	for i := 0; i < e; i++ {
		if result > ^uint64(0)/p {
			return ^uint64(0)
		}
		result *= p
	}
	return result
}

// reductionParams picks the polynomial degree d and prime p for one
// reduction step from palette size q at maximum degree Δ: the smallest d
// such that the least prime p > Δ·d satisfies p^{d+1} >= q (so every
// color has a distinct degree-d digit polynomial).
func reductionParams(q uint64, delta int) (d, p int) {
	if delta < 1 {
		delta = 1
	}
	for d = 1; ; d++ {
		p = smallestPrimeAtLeast(delta*d + 1)
		if satPow(uint64(p), d+1) >= q {
			return d, p
		}
	}
}

// polyEval evaluates the polynomial with the base-p digit coefficients of
// c at point a, over F_p: digits are consumed low to high against an
// accumulated power of a, so no digit buffer is materialized (this runs
// once per neighbor per evaluation point in the reduction's hot loop).
func polyEval(c uint64, d, p int, a int) int {
	acc, pw := 0, 1
	for i := 0; i <= d; i++ {
		digit := int(c % uint64(p))
		c /= uint64(p)
		acc = (acc + digit*pw) % p
		pw = (pw * a) % p
	}
	return acc
}

// LinialReduction is a message-passing algorithm performing iterated
// polynomial color reductions starting from the identities as colors,
// followed by a greedy palette walk down to TargetColors. It requires a
// proper starting coloring, which distinct identities trivially are.
type LinialReduction struct {
	// MaxDegree is the promise bound Δ on the graph's maximum degree.
	MaxDegree int
	// MaxIDBits bounds the identity universe (ids < 2^MaxIDBits).
	MaxIDBits int
	// TargetColors is the final palette size; at least MaxDegree+1.
	TargetColors int
}

// Name implements local.MessageAlgorithm.
func (l LinialReduction) Name() string {
	return fmt.Sprintf("linial-reduction(Δ=%d, target=%d)", l.MaxDegree, l.TargetColors)
}

// schedule precomputes the palette trajectory: the sequence of (d, p)
// parameters applied each reduction round, shared by all nodes (it
// depends only on Δ and the identity universe, not on the instance).
func (l LinialReduction) schedule() []struct{ d, p int } {
	var steps []struct{ d, p int }
	q := uint64(1) << uint(min(63, l.MaxIDBits))
	if l.MaxIDBits >= 64 {
		q = ^uint64(0)
	}
	for {
		d, p := reductionParams(q, l.MaxDegree)
		newQ := uint64(p) * uint64(p)
		if newQ >= q {
			break // fixed point reached; no further shrink possible
		}
		steps = append(steps, struct{ d, p int }{d, p})
		q = newQ
	}
	return steps
}

// FixedPointPalette returns the palette size after the reduction phase.
func (l LinialReduction) FixedPointPalette() int {
	q := uint64(1) << uint(min(63, l.MaxIDBits))
	if l.MaxIDBits >= 64 {
		q = ^uint64(0)
	}
	for _, s := range l.schedule() {
		q = uint64(s.p) * uint64(s.p)
	}
	return int(q)
}

// Rounds returns the total number of rounds: one per reduction step plus
// one per greedy color removed.
func (l LinialReduction) Rounds() int {
	target := l.TargetColors
	fixed := l.FixedPointPalette()
	greedy := fixed - target
	if greedy < 0 {
		greedy = 0
	}
	return len(l.schedule()) + greedy
}

// MsgWords implements local.WireAlgorithm: one word, the current color.
func (l LinialReduction) MsgWords(int) int { return 1 }

// NewWireProcess implements local.WireAlgorithm.
func (l LinialReduction) NewWireProcess() local.WireProcess {
	return &linialProc{cfg: l, steps: l.schedule()}
}

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (l LinialReduction) NewProcess() local.Process { return local.NewLegacyProcess(l) }

type linialProc struct {
	cfg   LinialReduction
	steps []struct{ d, p int }
	color uint64
	// greedyFrom is the palette size when the greedy phase starts.
	greedyFrom int
	// nbr is the per-round neighbor color scratch, reused across rounds.
	nbr []uint64
}

// decodeLinialColor rejects anything but a single color word.
func decodeLinialColor(words []uint64) (uint64, bool) {
	if len(words) != 1 {
		return 0, false
	}
	return words[0], true
}

// ResetProcess implements local.ResetProcess, keeping the reduction
// schedule and the neighbor scratch capacity while dropping all
// execution state.
func (p *linialProc) ResetProcess() {
	p.color, p.greedyFrom = 0, 0
	p.nbr = p.nbr[:0]
}

func (p *linialProc) Start(info local.NodeInfo, out *local.Outbox) {
	p.color = uint64(info.ID)
	p.greedyFrom = p.cfg.FixedPointPalette()
	if cap(p.nbr) < info.Degree {
		p.nbr = make([]uint64, 0, info.Degree)
	} else {
		p.nbr = p.nbr[:0]
	}
	out.Broadcast(p.color)
}

func (p *linialProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	nbr := p.nbr[:0]
	for port := 0; port < in.Degree(); port++ {
		if !in.Has(port) {
			continue
		}
		c, ok := decodeLinialColor(in.Words(port))
		if !ok {
			panic("construct: Linial reduction received a malformed color word")
		}
		nbr = append(nbr, c)
	}
	if round <= len(p.steps) {
		step := p.steps[round-1]
		p.color = p.reduceOnce(step.d, step.p, nbr)
	} else {
		// Greedy walk: in round len(steps)+k, nodes colored greedyFrom-k
		// recolor to the smallest color unused by their neighbors. The
		// recoloring nodes form an independent set (they all share one
		// color of a proper coloring), so properness is preserved.
		k := round - len(p.steps)
		target := uint64(p.greedyFrom - k)
		if p.color == target {
			p.color = smallestUnused(nbr)
		}
		if int(target) <= p.cfg.TargetColors {
			return true
		}
	}
	out.Broadcast(p.color)
	return false
}

func (p *linialProc) reduceOnce(d, pr int, nbr []uint64) uint64 {
	// Find a point a where our polynomial differs from every differing
	// neighbor polynomial; guaranteed to exist since p > Δ·d.
	for a := 0; a < pr; a++ {
		own := polyEval(p.color, d, pr, a)
		ok := true
		for _, c := range nbr {
			if c == p.color {
				panic("construct: Linial reduction invariant broken (improper input coloring)")
			}
			if polyEval(c, d, pr, a) == own {
				ok = false
				break
			}
		}
		if ok {
			return uint64(a*pr + own)
		}
	}
	panic(fmt.Sprintf("construct: no evaluation point found (p=%d, d=%d, deg=%d)", pr, d, len(nbr)))
}

func (p *linialProc) Output() []byte {
	if p.color > 255 {
		// Palette walks in this repository end at most at Δ+1 <= 255;
		// larger palettes indicate a misconfigured target.
		panic(fmt.Sprintf("construct: Linial output color %d exceeds byte palette", p.color))
	}
	return lang.EncodeColor(int(p.color))
}

// smallestUnused returns the least color not present among the
// neighbors: a linear scan per candidate (degrees are promise-bounded by
// Δ, so this is O(Δ²) worst case) instead of a per-call map, keeping the
// greedy rounds allocation-free.
func smallestUnused(nbr []uint64) uint64 {
	for c := uint64(0); ; c++ {
		used := false
		for _, x := range nbr {
			if x == c {
				used = true
				break
			}
		}
		if !used {
			return c
		}
	}
}

// LinialColoring packages the reduction as a construction algorithm
// producing a (Δ+1)-coloring.
func LinialColoring(maxDegree, maxIDBits int) Algorithm {
	return MessageConstruction{Algo: LinialReduction{
		MaxDegree:    maxDegree,
		MaxIDBits:    maxIDBits,
		TargetColors: maxDegree + 1,
	}}
}

// idBits returns the number of bits needed for the largest identity.
func idBits(maxID int64) int {
	return bits.Len64(uint64(maxID))
}

// LinialColoringFor builds the algorithm sized for a concrete instance.
func LinialColoringFor(in *lang.Instance) Algorithm {
	return LinialColoring(in.G.MaxDegree(), idBits(in.ID.Max()))
}
