package construct

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// TestResetProcessReuseByteIdentical pins the ResetProcess contract for
// every migrated algorithm: back-to-back trials on ONE batch — which
// reset and reuse the pooled per-(node, lane) process table — must
// produce byte-identical outputs and identical Stats to fresh
// single-shot runs at the same draws. Any state a ResetProcess fails to
// drop shows up here as a second-trial divergence.
func TestResetProcessReuseByteIdentical(t *testing.T) {
	ring := func(n int) *lang.Instance {
		in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.RandomPerm(n, 17))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	regular := func(n, d int) *lang.Instance {
		g, err := graph.RandomRegular(n, d, 9)
		if err != nil {
			t.Fatal(err)
		}
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.RandomPerm(n, 17))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	colored := func(n, q int) *lang.Instance {
		x := make([][]byte, n)
		for v := range x {
			x[v] = lang.EncodeColor(v % q)
		}
		in, err := lang.NewInstance(graph.Cycle(n), x, ids.RandomPerm(n, 17))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}

	cases := []struct {
		algo   local.MessageAlgorithm
		in     *lang.Instance
		random bool
	}{
		{retryAlgo{q: 3, t: 4}, ring(30), true},
		{ColeVishkin{MaxIDBits: 8}, ring(30), false},
		{LinialReduction{MaxDegree: 2, MaxIDBits: 8, TargetColors: 3}, ring(30), false},
		{GreedyMISFromColoring{Q: 3}, colored(9, 3), false},
		{LubyMIS{}, regular(32, 4), true},
		{EdgeLubyMatching{}, regular(32, 4), true},
		{MoserTardosLLL{Phases: 3}, regular(32, 4), true},
	}
	space := localrand.NewTapeSpace(57)
	for _, tc := range cases {
		t.Run(tc.algo.Name(), func(t *testing.T) {
			// The processes of every migrated algorithm must opt into
			// pooling.
			wa, ok := tc.algo.(local.WireAlgorithm)
			if !ok {
				t.Fatalf("%s is not a WireAlgorithm", tc.algo.Name())
			}
			if _, ok := wa.NewWireProcess().(local.ResetProcess); !ok {
				t.Fatalf("%s processes do not implement ResetProcess", tc.algo.Name())
			}

			plan := local.MustPlan(tc.in.G)
			bt := plan.NewBatch(2)
			for trial := 0; trial < 4; trial++ {
				var draws []localrand.Draw
				var draw *localrand.Draw
				if tc.random {
					draws = []localrand.Draw{space.Draw(uint64(trial)), space.Draw(uint64(100 + trial))}
					draw = &draws[0]
				} else {
					draws = nil
					draw = nil
				}
				var got []*local.Result
				var err error
				if draws != nil {
					got, err = bt.Run(tc.in, tc.algo, draws, local.RunOptions{})
				} else {
					got, err = bt.RunInstances([]*lang.Instance{tc.in, tc.in}, tc.algo, nil, local.RunOptions{})
				}
				if err != nil {
					t.Fatal(err)
				}
				for b := range got {
					var sub *localrand.Draw
					if draws != nil {
						sub = &draws[b]
					} else {
						sub = draw
					}
					// Fresh single-shot run: a transient engine with no pooled
					// state to inherit, the reference the reset path must match.
					want, err := local.RunMessage(tc.in, tc.algo, sub, local.RunOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if want.Stats != got[b].Stats {
						t.Fatalf("trial %d lane %d: pooled Stats %+v, want %+v", trial, b, got[b].Stats, want.Stats)
					}
					for v := range want.Y {
						if string(want.Y[v]) != string(got[b].Y[v]) {
							t.Fatalf("trial %d lane %d node %d: pooled output %x, want %x",
								trial, b, v, got[b].Y[v], want.Y[v])
						}
					}
				}
			}
		})
	}
}
