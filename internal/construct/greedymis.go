package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// GreedyMISFromColoring converts a proper Q-coloring (provided as the
// 1-byte input of every node) into a maximal independent set in exactly Q
// rounds: color classes are processed in order, and a node joins when its
// class comes up and no neighbor joined earlier. Properness of the input
// coloring guarantees that two adjacent nodes never decide in the same
// round, so independence holds by construction and maximality because a
// non-joining node witnessed a joined neighbor.
type GreedyMISFromColoring struct {
	Q int
}

// Name implements local.MessageAlgorithm.
func (g GreedyMISFromColoring) Name() string { return fmt.Sprintf("greedy-mis-from-%d-coloring", g.Q) }

// NewProcess implements local.MessageAlgorithm.
func (g GreedyMISFromColoring) NewProcess() local.Process { return &greedyMISProc{q: g.Q} }

type greedyMISProc struct {
	q       int
	color   int
	joined  bool
	blocked bool
	decided bool
}

func (p *greedyMISProc) Start(info local.NodeInfo) []local.Message {
	c, err := lang.DecodeColor(info.Input)
	if err != nil || c >= p.q {
		panic(fmt.Sprintf("construct: greedy MIS needs a proper %d-coloring as input (got %v)", p.q, info.Input))
	}
	p.color = c
	// Round 1 decisions: color-0 nodes join immediately.
	if p.color == 0 {
		p.joined = true
		p.decided = true
		return broadcast(true, info.Degree)
	}
	return make([]local.Message, info.Degree)
}

func (p *greedyMISProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	for _, m := range received {
		if m == nil {
			continue
		}
		if m.(bool) {
			p.blocked = true
		}
	}
	if round >= p.q {
		return nil, true
	}
	// Nodes of color `round` decide now.
	if !p.decided && p.color == round {
		p.decided = true
		if !p.blocked {
			p.joined = true
			return broadcast(true, len(received)), false
		}
	}
	return make([]local.Message, len(received)), false
}

func (p *greedyMISProc) Output() []byte { return lang.EncodeSelected(p.joined) }

// DeterministicRingMIS composes Cole–Vishkin with the greedy conversion:
// a fully deterministic MIS on oriented cycles in Θ(log* n) + 3 rounds.
func DeterministicRingMIS(maxIDBits int) Algorithm {
	return Pipeline{
		PipeName: "deterministic-ring-mis",
		Stages: []Algorithm{
			ColeVishkinColoring(maxIDBits),
			MessageConstruction{Algo: GreedyMISFromColoring{Q: 3}},
		},
	}
}

// DeterministicRingWeakColoring derives a deterministic weak 2-coloring
// of oriented cycles from the deterministic MIS.
func DeterministicRingWeakColoring(maxIDBits int) Algorithm {
	return Pipeline{
		PipeName: "deterministic-ring-weak-2-coloring",
		Stages: []Algorithm{
			DeterministicRingMIS(maxIDBits),
			ViewConstruction{Algo: local.ViewFunc{
				AlgoName: "mis-to-color",
				R:        0,
				F: func(v *local.View) []byte {
					sel, err := lang.DecodeSelected(v.X[0])
					if err != nil || !sel {
						return lang.EncodeColor(1)
					}
					return lang.EncodeColor(0)
				},
			}},
		},
	}
}
