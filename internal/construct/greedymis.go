package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
)

// GreedyMISFromColoring converts a proper Q-coloring (provided as the
// 1-byte input of every node) into a maximal independent set in exactly Q
// rounds: color classes are processed in order, and a node joins when its
// class comes up and no neighbor joined earlier. Properness of the input
// coloring guarantees that two adjacent nodes never decide in the same
// round, so independence holds by construction and maximality because a
// non-joining node witnessed a joined neighbor.
type GreedyMISFromColoring struct {
	Q int
}

// Name implements local.MessageAlgorithm.
func (g GreedyMISFromColoring) Name() string { return fmt.Sprintf("greedy-mis-from-%d-coloring", g.Q) }

// MsgWords implements local.WireAlgorithm: the only message is the
// payload-free "joined" announcement, a zero-word signal.
func (g GreedyMISFromColoring) MsgWords(int) int { return 0 }

// NewWireProcess implements local.WireAlgorithm.
func (g GreedyMISFromColoring) NewWireProcess() local.WireProcess { return &greedyMISProc{q: g.Q} }

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (g GreedyMISFromColoring) NewProcess() local.Process { return local.NewLegacyProcess(g) }

type greedyMISProc struct {
	q       int
	color   int
	joined  bool
	blocked bool
	decided bool
}

// ResetProcess implements local.ResetProcess, keeping the palette size
// while dropping all execution state.
func (p *greedyMISProc) ResetProcess() { *p = greedyMISProc{q: p.q} }

// decodeGreedyJoin rejects any join announcement carrying payload words.
func decodeGreedyJoin(words []uint64) bool { return len(words) == 0 }

func (p *greedyMISProc) Start(info local.NodeInfo, out *local.Outbox) {
	c, err := lang.DecodeColor(info.Input)
	if err != nil || c >= p.q {
		panic(fmt.Sprintf("construct: greedy MIS needs a proper %d-coloring as input (got %v)", p.q, info.Input))
	}
	p.color = c
	// Round 1 decisions: color-0 nodes join immediately.
	if p.color == 0 {
		p.joined = true
		p.decided = true
		out.SignalAll()
	}
}

func (p *greedyMISProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	for port := 0; port < in.Degree(); port++ {
		if !in.Has(port) {
			continue
		}
		if !decodeGreedyJoin(in.Words(port)) {
			panic("construct: greedy MIS received a malformed join announcement")
		}
		p.blocked = true
	}
	if round >= p.q {
		return true
	}
	// Nodes of color `round` decide now.
	if !p.decided && p.color == round {
		p.decided = true
		if !p.blocked {
			p.joined = true
			out.SignalAll()
		}
	}
	return false
}

func (p *greedyMISProc) Output() []byte { return lang.EncodeSelected(p.joined) }

// DeterministicRingMIS composes Cole–Vishkin with the greedy conversion:
// a fully deterministic MIS on oriented cycles in Θ(log* n) + 3 rounds.
func DeterministicRingMIS(maxIDBits int) Algorithm {
	return Pipeline{
		PipeName: "deterministic-ring-mis",
		Stages: []Algorithm{
			ColeVishkinColoring(maxIDBits),
			MessageConstruction{Algo: GreedyMISFromColoring{Q: 3}},
		},
	}
}

// DeterministicRingWeakColoring derives a deterministic weak 2-coloring
// of oriented cycles from the deterministic MIS.
func DeterministicRingWeakColoring(maxIDBits int) Algorithm {
	return Pipeline{
		PipeName: "deterministic-ring-weak-2-coloring",
		Stages: []Algorithm{
			DeterministicRingMIS(maxIDBits),
			ViewConstruction{Algo: local.ViewFunc{
				AlgoName: "mis-to-color",
				R:        0,
				F: func(v *local.View) []byte {
					sel, err := lang.DecodeSelected(v.X[0])
					if err != nil || !sel {
						return lang.EncodeColor(1)
					}
					return lang.EncodeColor(0)
				},
			}},
		},
	}
}
