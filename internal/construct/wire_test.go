package construct

import (
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// This file pins the wire codecs of the migrated message algorithms:
// decode(encode(msg)) == msg through the exact Outbox/Inbox machinery
// the engine uses (local.NewLoopback), malformed payload rejection, and
// transport equivalence — every algorithm must produce byte-identical
// outputs and Stats natively (words in the slabs) and through
// local.Boxed (the legacy boxed transport).

// FuzzLubyValCodec: two-word value messages round-trip; any other
// payload length is rejected.
func FuzzLubyValCodec(f *testing.F) {
	f.Add(uint64(0), int64(0))
	f.Add(uint64(1)<<63, int64(-1))
	f.Add(uint64(12345), int64(99))
	f.Fuzz(func(t *testing.T, r uint64, id int64) {
		out, in := local.NewLoopback(2, 2)
		v := lubyVal{R: r, ID: id}
		out.Send(0, v.R)
		out.Append(0, uint64(v.ID))
		got, ok := decodeLubyVal(in.Words(0))
		if !ok || got != v {
			t.Fatalf("decode(encode(%+v)) = %+v, %v", v, got, ok)
		}
		// Truncated and padded payloads must be rejected.
		if _, ok := decodeLubyVal(in.Words(0)[:1]); ok {
			t.Error("one-word value accepted")
		}
		if _, ok := decodeLubyVal([]uint64{r, uint64(id), 7}); ok {
			t.Error("three-word value accepted")
		}
		if _, ok := decodeLubyVal(nil); ok {
			t.Error("empty value accepted")
		}
		// A join signal is zero words — and only zero words.
		out.Signal(1)
		if !decodeLubyJoin(in.Words(1)) {
			t.Error("signal rejected as join")
		}
		if decodeLubyJoin(in.Words(0)) {
			t.Error("value payload accepted as join")
		}
	})
}

// FuzzMatchValCodec: three-word draw messages and 3k-word share lists
// round-trip; lengths not a positive multiple of three are rejected.
func FuzzMatchValCodec(f *testing.F) {
	f.Add(uint64(7), int64(3), uint8(1), uint8(3))
	f.Add(uint64(0), int64(-5), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, r uint64, hid int64, hport, k uint8) {
		vals := make([]matchVal, int(k%6)+1)
		for i := range vals {
			vals[i] = matchVal{R: r + uint64(i), HID: hid, HPort: int(hport) + i}
		}
		out, in := local.NewLoopback(1, 3*len(vals))
		for _, v := range vals {
			appendMatchVal(out, 0, v)
		}
		words := in.Words(0)
		n, ok := decodeMatchShare(words)
		if !ok || n != len(vals) {
			t.Fatalf("share list of %d decoded as %d, %v", len(vals), n, ok)
		}
		for i, want := range vals {
			if got := matchValAt(words, i); got != want {
				t.Fatalf("value %d: decode = %+v, want %+v", i, got, want)
			}
		}
		if d, ok := decodeMatchDraw(words[:3]); !ok || d != vals[0] {
			t.Fatalf("draw decode = %+v, %v", d, ok)
		}
		// Malformed: truncated lists, empty lists, overlong draws.
		if _, ok := decodeMatchShare(words[:len(words)-1]); ok {
			t.Error("truncated share list accepted")
		}
		if _, ok := decodeMatchShare(nil); ok {
			t.Error("empty share list accepted")
		}
		if len(vals) > 1 {
			if _, ok := decodeMatchDraw(words); ok {
				t.Error("multi-value draw accepted")
			}
		}
		if !decodeMatchAnnounce(nil) || decodeMatchAnnounce(words) {
			t.Error("announcement codec confused presence with payload")
		}
	})
}

// FuzzRetryColorCodec: single-word colors below q round-trip; oversized
// colors and wrong lengths are rejected.
func FuzzRetryColorCodec(f *testing.F) {
	f.Add(uint64(2), uint8(3))
	f.Add(uint64(0), uint8(1))
	f.Fuzz(func(t *testing.T, c uint64, rawQ uint8) {
		q := int(rawQ%8) + 1
		c %= uint64(q)
		out, in := local.NewLoopback(1, 1)
		out.Send(0, c)
		got, ok := decodeRetryColor(in.Words(0), q)
		if !ok || got != int(c) {
			t.Fatalf("decode(encode(%d)) = %d, %v", c, got, ok)
		}
		if _, ok := decodeRetryColor([]uint64{uint64(q)}, q); ok {
			t.Error("out-of-palette color accepted")
		}
		if _, ok := decodeRetryColor([]uint64{c, c}, q); ok {
			t.Error("two-word color accepted")
		}
		if _, ok := decodeRetryColor(nil, q); ok {
			t.Error("empty color accepted")
		}
	})
}

// FuzzMTEventCodec: violated-event lists of any size (including empty)
// round-trip as sets; bits accept only a single 0/1 word; resample
// commands only zero words.
func FuzzMTEventCodec(f *testing.F) {
	f.Add(int64(4), uint8(3))
	f.Add(int64(-2), uint8(0))
	f.Fuzz(func(t *testing.T, base int64, rawK uint8) {
		k := int(rawK % 5)
		events := make(map[int64]bool, k)
		for i := 0; i < k; i++ {
			events[base+int64(i)] = true
		}
		out, in := local.NewLoopback(2, k+1)
		out.Signal(0)
		for e := range events {
			out.Append(0, uint64(e))
		}
		if got := in.Len(0); got != k {
			t.Fatalf("event list length %d, want %d", got, k)
		}
		seen := make(map[int64]bool, k)
		gatherEvents(seen, in.Words(0))
		if len(seen) != len(events) {
			t.Fatalf("gathered %d events, want %d", len(seen), len(events))
		}
		for e := range events {
			if !seen[e] {
				t.Fatalf("event %d lost in transit", e)
			}
		}
		// Bit codec.
		out.Send(1, 1)
		if b, ok := decodeMTBit(in.Words(1)); !ok || b != 1 {
			t.Fatalf("bit decode = %d, %v", b, ok)
		}
		if _, ok := decodeMTBit([]uint64{2}); ok {
			t.Error("non-binary bit accepted")
		}
		if _, ok := decodeMTBit(nil); ok {
			t.Error("empty bit accepted")
		}
		if _, ok := decodeMTBit([]uint64{0, 0}); ok {
			t.Error("two-word bit accepted")
		}
		// Resample codec: presence only.
		if !decodeMTResample(nil) || decodeMTResample([]uint64{1}) {
			t.Error("resample codec confused presence with payload")
		}
	})
}

// FuzzCVLinialColorCodec: the single-word color codecs of Cole–Vishkin
// and the Linial reduction.
func FuzzCVLinialColorCodec(f *testing.F) {
	f.Add(uint64(5))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, c uint64) {
		out, in := local.NewLoopback(1, 1)
		out.Send(0, c)
		if got, ok := decodeCVColor(in.Words(0)); !ok || got != c {
			t.Fatalf("cv decode = %d, %v", got, ok)
		}
		if got, ok := decodeLinialColor(in.Words(0)); !ok || got != c {
			t.Fatalf("linial decode = %d, %v", got, ok)
		}
		for _, bad := range [][]uint64{nil, {c, c}} {
			if _, ok := decodeCVColor(bad); ok {
				t.Errorf("cv accepted %v", bad)
			}
			if _, ok := decodeLinialColor(bad); ok {
				t.Errorf("linial accepted %v", bad)
			}
		}
	})
}

// TestGreedyJoinCodec: the zero-word join signal.
func TestGreedyJoinCodec(t *testing.T) {
	out, in := local.NewLoopback(1, 1)
	out.Signal(0)
	if !decodeGreedyJoin(in.Words(0)) {
		t.Error("signal rejected")
	}
	if decodeGreedyJoin([]uint64{1}) {
		t.Error("payload-carrying join accepted")
	}
}

// TestConstructWireMatchesBoxed pins transport equivalence for every
// migrated algorithm: native wire execution and the boxed legacy
// transport must produce byte-identical outputs and identical Stats at
// equal seeds.
func TestConstructWireMatchesBoxed(t *testing.T) {
	ring := func(t *testing.T, n int) *lang.Instance {
		t.Helper()
		in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.RandomPerm(n, 13))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	regular := func(t *testing.T, n, d int) *lang.Instance {
		t.Helper()
		g, err := graph.RandomRegular(n, d, 5)
		if err != nil {
			t.Fatal(err)
		}
		in, err := lang.NewInstance(g, lang.EmptyInputs(n), ids.RandomPerm(n, 13))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	// Greedy MIS needs a proper coloring as input: color cycle nodes by
	// index mod 3 (proper on C_9 because 9 % 3 == 0).
	colored := func(t *testing.T, n, q int) *lang.Instance {
		t.Helper()
		x := make([][]byte, n)
		for v := range x {
			x[v] = lang.EncodeColor(v % q)
		}
		in, err := lang.NewInstance(graph.Cycle(n), x, ids.RandomPerm(n, 13))
		if err != nil {
			t.Fatal(err)
		}
		return in
	}

	type wireMsgAlgo interface {
		local.MessageAlgorithm
		local.WireAlgorithm
	}
	cases := []struct {
		algo   wireMsgAlgo
		in     *lang.Instance
		random bool
	}{
		{retryAlgo{q: 3, t: 4}, ring(t, 30), true},
		{ColeVishkin{MaxIDBits: 8}, ring(t, 30), false},
		{LinialReduction{MaxDegree: 2, MaxIDBits: 8, TargetColors: 3}, ring(t, 30), false},
		{GreedyMISFromColoring{Q: 3}, colored(t, 9, 3), false},
		{LubyMIS{}, regular(t, 32, 4), true},
		{EdgeLubyMatching{}, regular(t, 32, 4), true},
		{MoserTardosLLL{Phases: 3}, regular(t, 32, 4), true},
	}
	space := localrand.NewTapeSpace(31)
	for _, tc := range cases {
		t.Run(tc.algo.Name(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				var draw *localrand.Draw
				if tc.random {
					d := space.Draw(uint64(trial))
					draw = &d
				}
				wire, err := local.RunMessage(tc.in, tc.algo, draw, local.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				boxed, err := local.RunMessage(tc.in, local.Boxed(tc.algo), draw, local.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if wire.Stats != boxed.Stats {
					t.Fatalf("trial %d: wire Stats %+v != boxed Stats %+v", trial, wire.Stats, boxed.Stats)
				}
				for v := range wire.Y {
					if string(wire.Y[v]) != string(boxed.Y[v]) {
						t.Fatalf("trial %d node %d: wire %v vs boxed %v", trial, v, wire.Y[v], boxed.Y[v])
					}
				}
				if !tc.random {
					break
				}
			}
		})
	}

	// Batched lanes of a randomized wire algorithm against the boxed
	// transport, covering the [slot][lane] word layout at width > 1.
	in := regular(t, 32, 4)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(4)
	draws := make([]localrand.Draw, 4)
	for i := range draws {
		draws[i] = space.Draw(uint64(100 + i))
	}
	for _, algo := range []wireMsgAlgo{LubyMIS{}, EdgeLubyMatching{}, MoserTardosLLL{Phases: 2}} {
		wireLanes, err := bt.Run(in, algo, draws, local.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		boxedLanes, err := bt.Run(in, local.Boxed(algo), draws, local.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for b := range draws {
			if wireLanes[b].Stats != boxedLanes[b].Stats {
				t.Fatalf("%s lane %d: wire Stats %+v != boxed Stats %+v", algo.Name(), b, wireLanes[b].Stats, boxedLanes[b].Stats)
			}
			for v := range wireLanes[b].Y {
				if string(wireLanes[b].Y[v]) != string(boxedLanes[b].Y[v]) {
					t.Fatalf("%s lane %d node %d: outputs differ", algo.Name(), b, v)
				}
			}
		}
	}
}

// TestMsgWordsBounds pins that every migrated algorithm's MsgWords is a
// true upper bound on an adversarially busy fixture: runs panic inside
// the engine if a message overflows its slot, so completing cleanly is
// the assertion.
func TestMsgWordsBounds(t *testing.T) {
	g := graph.Complete(8) // degree 7 everywhere: every list maxes out
	in, err := lang.NewInstance(g, lang.EmptyInputs(8), ids.RandomPerm(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	space := localrand.NewTapeSpace(41)
	for trial := 0; trial < 5; trial++ {
		draw := space.Draw(uint64(trial))
		for _, algo := range []local.MessageAlgorithm{LubyMIS{}, EdgeLubyMatching{}, MoserTardosLLL{Phases: 4}} {
			if _, err := local.RunMessage(in, algo, &draw, local.RunOptions{}); err != nil {
				t.Fatalf("%s: %v", algo.Name(), err)
			}
		}
	}
	linial := LinialReduction{MaxDegree: 7, MaxIDBits: idBits(in.ID.Max()), TargetColors: 8}
	if _, err := local.RunMessage(in, linial, nil, local.RunOptions{MaxRounds: 4096}); err != nil {
		t.Fatal(err)
	}
}
