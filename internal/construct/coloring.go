package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// RandomColoring is the trivial zero-round Monte-Carlo algorithm of §1.1:
// "every node picks independently uniformly at random a color 1, 2, or 3".
// It guarantees that in expectation a constant fraction of nodes is
// properly colored — which is exactly what the ε-slack relaxation needs
// and the f-resilient relaxation cannot use.
func RandomColoring(q int) Algorithm {
	return ViewConstruction{Algo: local.ViewFunc{
		AlgoName: fmt.Sprintf("random-%d-coloring", q),
		R:        0,
		F: func(v *local.View) []byte {
			return lang.EncodeColor(v.Tape().Intn(q))
		},
	}}
}

// RetryColoring is the t-round randomized refinement of RandomColoring:
// every node starts with a uniform color; in each of the T retry rounds,
// nodes in conflict with a neighbor resample uniformly. The conflicted
// fraction decays geometrically in T (measured by experiment E2), so for
// every fixed ε a constant number of rounds — independent of n — meets the
// ε-slack budget. This is the witness that randomization helps for
// ε-slack relaxations.
type RetryColoring struct {
	Q int
	T int
}

// Name implements Algorithm.
func (r RetryColoring) Name() string { return fmt.Sprintf("retry-%d-coloring(T=%d)", r.Q, r.T) }

// Run implements Algorithm.
func (r RetryColoring) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.Run(in, draw)
}

// RunOn implements EngineRunner.
func (r RetryColoring) RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.RunOn(eng, in, draw)
}

// RunBatch implements BatchRunner.
func (r RetryColoring) RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.RunBatch(bt, ins, draws)
}

// RunShardedInstances implements ShardRunner.
func (r RetryColoring) RunShardedInstances(sh *local.Sharded, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.RunShardedInstances(sh, ins, draws)
}

// RetryMessage exposes the retry coloring's message-passing core as a
// local.MessageAlgorithm (it is also a WireAlgorithm), for harnesses
// that drive engines directly — the shard-equivalence suite above all.
func RetryMessage(q, t int) local.MessageAlgorithm { return retryAlgo{q: q, t: t} }

type retryAlgo struct{ q, t int }

func (a retryAlgo) Name() string { return fmt.Sprintf("retry-%d-coloring(T=%d)", a.q, a.t) }

// MsgWords implements local.WireAlgorithm: one word, the current color.
func (a retryAlgo) MsgWords(int) int { return 1 }

// NewWireProcess implements local.WireAlgorithm.
func (a retryAlgo) NewWireProcess() local.WireProcess {
	return &retryProc{q: a.q, t: a.t}
}

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (a retryAlgo) NewProcess() local.Process { return local.NewLegacyProcess(a) }

type retryProc struct {
	q, t  int
	tape  *localrand.Tape
	color int
}

// decodeRetryColor rejects anything but a single word holding a color
// below q.
func decodeRetryColor(words []uint64, q int) (int, bool) {
	if len(words) != 1 || words[0] >= uint64(q) {
		return 0, false
	}
	return int(words[0]), true
}

// ResetProcess implements local.ResetProcess, keeping the palette and
// round configuration while dropping all execution state.
func (p *retryProc) ResetProcess() { *p = retryProc{q: p.q, t: p.t} }

func (p *retryProc) Start(info local.NodeInfo, out *local.Outbox) {
	p.tape = info.Tape
	p.color = p.tape.Intn(p.q)
	out.Broadcast(uint64(p.color))
}

func (p *retryProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	// Past the last retry round nothing can change the color any more, so
	// the node halts without scanning its final arrivals (whose only
	// possible effect is a conflict bit nobody reads).
	if round > p.t {
		return true
	}
	conflicted := false
	for port := 0; port < in.Degree(); port++ {
		if !in.Has(port) {
			continue
		}
		c, ok := decodeRetryColor(in.Words(port), p.q)
		if !ok {
			panic("construct: retry coloring received a malformed color word")
		}
		if c == p.color {
			conflicted = true
			break
		}
	}
	if conflicted {
		p.color = p.tape.Intn(p.q)
	}
	out.Broadcast(uint64(p.color))
	return false
}

func (p *retryProc) Output() []byte { return lang.EncodeColor(p.color) }

// NewVecProcess implements local.VecAlgorithm: one SoA process per node
// steps every lane of a batch in a single call per round.
func (a retryAlgo) NewVecProcess() local.VecProcess { return &retryVec{q: a.q, t: a.t} }

// retryVec is retryProc across all lanes as struct-of-arrays; colors are
// kept as wire words so the broadcast row needs no conversion pass.
type retryVec struct {
	q, t  int
	tapes []*localrand.Tape
	color []uint64
	act   []bool // scratch: lanes this call acts for
	conf  []bool // scratch: conflicted lanes
	scan  []bool // scratch: lanes still scanning (act and not yet conflicted)
}

// ResetVec implements local.ResetVecProcess, keeping the palette and
// round configuration while dropping the tape references into the
// engine's per-run slab.
func (p *retryVec) ResetVec() { clear(p.tapes) }

func (p *retryVec) ensure(k int) {
	p.tapes = vecRow(p.tapes, k)
	p.color = vecRow(p.color, k)
	p.act = vecRow(p.act, k)
	p.conf = vecRow(p.conf, k)
	p.scan = vecRow(p.scan, k)
}

func (p *retryVec) StartVec(info *local.VecNodeInfo, out *local.OutboxVec) {
	k := info.Lanes()
	p.ensure(k)
	for b := 0; b < k; b++ {
		t := info.Tape(b)
		p.tapes[b] = t
		p.color[b] = uint64(t.Intn(p.q))
		p.act[b] = true
	}
	out.BroadcastRow(p.color, p.act)
}

func (p *retryVec) StepVec(round int, in *local.InboxVec, out *local.OutboxVec, done []bool) {
	k, mask := in.Lanes(), in.Mask()
	act, conf, scan := p.act[:k], p.conf[:k], p.scan[:k]
	// Past the last retry round the lanes halt without scanning, exactly
	// like the scalar Step's early return.
	if round > p.t {
		for b := 0; b < k; b++ {
			if !done[b] && (mask == nil || !mask[b]) {
				done[b] = true
			}
		}
		return
	}
	for b := 0; b < k; b++ {
		a := !done[b] && (mask == nil || !mask[b])
		act[b] = a
		conf[b] = false
		// A conflicted lane skips the rest of the scan, like the scalar
		// break — later ports go unvalidated either way — so the scan
		// predicate folds act and not-yet-conflicted into one branch.
		scan[b] = a
	}
	q, color := uint64(p.q), p.color[:k]
	for port := 0; port < in.Degree(); port++ {
		lens := in.LensRow(port)
		words, stride := in.WordBlock(port)
		if stride == 1 && len(words) >= k {
			// MsgWords is 1, so every port's block is stride-1: the lane's
			// word is words[b] and the bounds checks vanish from the loop.
			w := words[:k]
			for b := 0; b < k; b++ {
				if !scan[b] {
					continue
				}
				l := lens[b]
				if l == 0 {
					continue
				}
				c := w[b]
				if l != 2 || c >= q {
					panic("construct: retry coloring received a malformed color word")
				}
				if c == color[b] {
					conf[b] = true
					scan[b] = false
				}
			}
			continue
		}
		for b := 0; b < k; b++ {
			if !scan[b] {
				continue
			}
			l := lens[b]
			if l == 0 {
				continue
			}
			c := words[b*stride]
			if l != 2 || c >= q {
				panic("construct: retry coloring received a malformed color word")
			}
			if c == color[b] {
				conf[b] = true
				scan[b] = false
			}
		}
	}
	for b := 0; b < k; b++ {
		if act[b] && conf[b] {
			p.color[b] = uint64(p.tapes[b].Intn(p.q))
		}
	}
	out.BroadcastRow(p.color, act)
}

func (p *retryVec) OutputVec(b int) []byte { return lang.EncodeColor(int(p.color[b])) }
