package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// RandomColoring is the trivial zero-round Monte-Carlo algorithm of §1.1:
// "every node picks independently uniformly at random a color 1, 2, or 3".
// It guarantees that in expectation a constant fraction of nodes is
// properly colored — which is exactly what the ε-slack relaxation needs
// and the f-resilient relaxation cannot use.
func RandomColoring(q int) Algorithm {
	return ViewConstruction{Algo: local.ViewFunc{
		AlgoName: fmt.Sprintf("random-%d-coloring", q),
		R:        0,
		F: func(v *local.View) []byte {
			return lang.EncodeColor(v.Tape().Intn(q))
		},
	}}
}

// RetryColoring is the t-round randomized refinement of RandomColoring:
// every node starts with a uniform color; in each of the T retry rounds,
// nodes in conflict with a neighbor resample uniformly. The conflicted
// fraction decays geometrically in T (measured by experiment E2), so for
// every fixed ε a constant number of rounds — independent of n — meets the
// ε-slack budget. This is the witness that randomization helps for
// ε-slack relaxations.
type RetryColoring struct {
	Q int
	T int
}

// Name implements Algorithm.
func (r RetryColoring) Name() string { return fmt.Sprintf("retry-%d-coloring(T=%d)", r.Q, r.T) }

// Run implements Algorithm.
func (r RetryColoring) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.Run(in, draw)
}

// RunOn implements EngineRunner.
func (r RetryColoring) RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.RunOn(eng, in, draw)
}

// RunBatch implements BatchRunner.
func (r RetryColoring) RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	mc := MessageConstruction{Algo: retryAlgo{q: r.Q, t: r.T}}
	return mc.RunBatch(bt, ins, draws)
}

type retryAlgo struct{ q, t int }

func (a retryAlgo) Name() string { return fmt.Sprintf("retry-%d-coloring(T=%d)", a.q, a.t) }
func (a retryAlgo) NewProcess() local.Process {
	return &retryProc{q: a.q, t: a.t}
}

type retryProc struct {
	q, t  int
	tape  *localrand.Tape
	color int
}

func (p *retryProc) Start(info local.NodeInfo) []local.Message {
	p.tape = info.Tape
	p.color = p.tape.Intn(p.q)
	return broadcast(p.color, info.Degree)
}

func (p *retryProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	conflicted := false
	for _, m := range received {
		if m == nil {
			continue
		}
		if m.(int) == p.color {
			conflicted = true
			break
		}
	}
	if round > p.t {
		return nil, true
	}
	if conflicted {
		p.color = p.tape.Intn(p.q)
	}
	return broadcast(p.color, len(received)), false
}

func (p *retryProc) Output() []byte { return lang.EncodeColor(p.color) }

// broadcast replicates one payload across all ports.
func broadcast(m local.Message, degree int) []local.Message {
	out := make([]local.Message, degree)
	for i := range out {
		out[i] = m
	}
	return out
}
