package construct

import (
	"bytes"
	"testing"

	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// plainAlgorithm hides an algorithm's pooled and batched paths, forcing
// RunBatchInstances through the single-shot fallback.
type plainAlgorithm struct{ a Algorithm }

func (p plainAlgorithm) Name() string { return p.a.Name() }
func (p plainAlgorithm) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return p.a.Run(in, draw)
}

// TestRunBatchMatchesRunOn pins the construction-side equivalence
// contract: every lane of RunBatch matches RunOn (pooled) and Run
// (single-shot) at the same draw, for the ball-view, message-passing,
// retry, and pipeline paths, plus the single-shot fallback — including
// ragged lane counts and back-to-back batch reuse.
func TestRunBatchMatchesRunOn(t *testing.T) {
	in := instanceOn(t, graph.Cycle(24), ids.Consecutive(24))
	plan := local.MustPlan(in.G)
	space := localrand.NewTapeSpace(91)

	algos := []Algorithm{
		RandomColoring(3),
		RetryColoring{Q: 3, T: 2},
		MessageConstruction{Algo: retryAlgo{q: 3, t: 1}},
		Pipeline{Stages: []Algorithm{RandomColoring(3), RetryColoring{Q: 3, T: 1}}},
		plainAlgorithm{a: RandomColoring(3)},
	}
	const width = 4
	bt := plan.NewBatch(width)
	eng := plan.NewEngine()
	for _, a := range algos {
		t.Run(a.Name(), func(t *testing.T) {
			lo := 0
			for rep, k := range []int{width, width - 1} {
				draws := make([]localrand.Draw, k)
				for b := range draws {
					draws[b] = space.Draw(uint64(lo + b))
				}
				ys, err := RunBatch(a, bt, in, draws)
				if err != nil {
					t.Fatal(err)
				}
				if len(ys) != k {
					t.Fatalf("rep %d: %d lanes, want %d", rep, len(ys), k)
				}
				for b := 0; b < k; b++ {
					pooled, err := RunOn(a, eng, in, &draws[b])
					if err != nil {
						t.Fatal(err)
					}
					single, err := a.Run(in, &draws[b])
					if err != nil {
						t.Fatal(err)
					}
					for v := range pooled {
						if !bytes.Equal(pooled[v], ys[b][v]) {
							t.Fatalf("rep %d lane %d node %d: batched %x, pooled %x", rep, b, v, ys[b][v], pooled[v])
						}
						if !bytes.Equal(single[v], ys[b][v]) {
							t.Fatalf("rep %d lane %d node %d: batched %x, single-shot %x", rep, b, v, ys[b][v], single[v])
						}
					}
				}
				lo += k
			}
		})
	}
}
