// Package construct implements the construction algorithms of the paper's
// experiment suite: the trivial zero-round randomized colorings of §1.1,
// conflict-retry colorings, Cole–Vishkin 3-coloring of oriented cycles
// (the Ω(log* n)-matching upper bound of [25, 27]), Linial-style
// polynomial color reduction for general bounded-degree graphs, Luby's
// randomized MIS, randomized maximal matching, weak 2-coloring via MIS,
// a distributed Moser–Tardos resampler for the LLL language, and the
// corpus of order-invariant algorithms used by the Claim-2/Section-4
// lower-bound experiments.
package construct

import (
	"fmt"

	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// Algorithm is a construction algorithm for a distributed task: given an
// instance (G, x, id) and (for Monte-Carlo algorithms) a draw σ from its
// tape space, it produces the global output y. Implementations wrap
// either the ball-view or the message-passing interface of package local.
type Algorithm interface {
	Name() string
	Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error)
}

// Exec is the package's one execution handle: the Run verb dispatches a
// construction algorithm to whichever execution shape the handle holds.
// Set Sh for sharded execution, Bt for a vectorized batch, Eng for
// pooled per-trial runs; the zero Exec runs single-shot. Precedence is
// Sh > Bt > Eng, and each shape falls back gracefully for algorithms
// that do not implement its fast path (see RunOn, RunBatchInstances,
// RunShardedInstances — now thin deprecated wrappers over this handle).
// Outputs are byte-identical across shapes at equal draws.
type Exec struct {
	// Eng, when set, runs lanes one at a time on the reusable engine.
	Eng *local.Engine
	// Bt, when set, runs the whole lane vector through the batch; it
	// takes precedence over Eng.
	Bt *local.Batch
	// Sh, when set, runs the lane vector across the shards (falling back
	// to the Sharded's companion batch for view-only algorithms); it
	// takes precedence over Bt and Eng.
	Sh *local.Sharded
}

// Run executes len(draws) independent trials of a on one shared
// instance — the standard Monte-Carlo chunk shape. Lane b runs in under
// draws[b]; out[b] is lane b's global output.
func (x Exec) Run(a Algorithm, in *lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	ins := make([]*lang.Instance, len(draws))
	for b := range ins {
		ins[b] = in
	}
	return x.RunInstances(a, ins, draws)
}

// RunInstances is Run with per-lane instances (all over the handle's
// plan graph); pipelines use it to thread lane-varying inputs between
// stages. nil draws run every lane deterministically.
func (x Exec) RunInstances(a Algorithm, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	switch {
	case x.Sh != nil:
		if r, ok := a.(ShardRunner); ok {
			return r.RunShardedInstances(x.Sh, ins, draws)
		}
		return Exec{Bt: x.Sh.Unsharded()}.RunInstances(a, ins, draws)
	case x.Bt != nil:
		if r, ok := a.(BatchRunner); ok {
			return r.RunBatch(x.Bt, ins, draws)
		}
	}
	// Scalar shapes (and batch-less algorithms): one lane at a time,
	// pooled when the handle carries an engine.
	ys := make([][][]byte, len(ins))
	for b, in := range ins {
		var sub *localrand.Draw
		if draws != nil {
			sub = &draws[b]
		}
		var y [][]byte
		var err error
		if x.Eng != nil {
			y, err = runOn(a, x.Eng, in, sub)
		} else {
			y, err = a.Run(in, sub)
		}
		if err != nil {
			return nil, err
		}
		ys[b] = y
	}
	return ys, nil
}

// EngineRunner is the pooled execution path of a construction algorithm:
// RunOn behaves exactly like Run but executes on the caller's reusable
// engine, so trial loops amortize execution scratch across trials. The
// engine's plan must be built for in.G.
type EngineRunner interface {
	RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error)
}

// RunOn executes a on the pooled engine when it supports pooling and
// falls back to the single-shot Run otherwise; outputs are identical
// either way.
//
// Deprecated: use Exec{Eng: eng}.Run with a one-lane draw vector.
func RunOn(a Algorithm, eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return runOn(a, eng, in, draw)
}

// runOn is the scalar dispatch core shared by the Exec handle and the
// deprecated RunOn wrapper.
func runOn(a Algorithm, eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	if r, ok := a.(EngineRunner); ok {
		return r.RunOn(eng, in, draw)
	}
	return a.Run(in, draw)
}

// BatchRunner is the vectorized execution path of a construction
// algorithm: RunBatch runs one independent trial per lane — lane b
// executes ins[b] under draws[b] (nil draws = all lanes deterministic) —
// through the caller's reusable batch, and returns the per-lane global
// outputs. Lane b's output is byte-identical to RunOn with the same
// (instance, draw); the batch's plan must be built for the lanes' shared
// graph.
type BatchRunner interface {
	RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error)
}

// RunBatch executes len(draws) independent trials of a on one shared
// instance through the batch — the standard Monte-Carlo chunk shape —
// falling back to single-shot runs for algorithms without a batched
// path. Outputs are identical either way.
//
// Deprecated: use Exec{Bt: bt}.Run.
func RunBatch(a Algorithm, bt *local.Batch, in *lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return Exec{Bt: bt}.Run(a, in, draws)
}

// RunBatchInstances is RunBatch with per-lane instances (all over the
// batch's plan graph); pipelines use it to thread lane-varying inputs
// between stages.
//
// Deprecated: use Exec{Bt: bt}.RunInstances.
func RunBatchInstances(a Algorithm, bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return Exec{Bt: bt}.RunInstances(a, ins, draws)
}

// ShardRunner is the sharded execution path of a construction
// algorithm: RunShardedInstances behaves exactly like RunBatch's
// instance form but executes the lane vector across the Sharded's
// shards, with byte-identical outputs.
type ShardRunner interface {
	RunShardedInstances(sh *local.Sharded, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error)
}

// RunSharded executes len(draws) independent trials of a on one shared
// instance across the shards. Algorithms without a sharded path — pure
// ball-view constructions, whose work is embarrassingly node-local and
// gains nothing from a cut exchange — fall back to the Sharded's
// companion unsharded batch; outputs are identical either way.
//
// Deprecated: use Exec{Sh: sh}.Run.
func RunSharded(a Algorithm, sh *local.Sharded, in *lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return Exec{Sh: sh}.Run(a, in, draws)
}

// RunShardedInstances is RunSharded with per-lane instances (all over
// the sharded executor's plan graph).
//
// Deprecated: use Exec{Sh: sh}.RunInstances.
func RunShardedInstances(a Algorithm, sh *local.Sharded, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return Exec{Sh: sh}.RunInstances(a, ins, draws)
}

// ViewConstruction adapts a ball-view algorithm.
type ViewConstruction struct {
	Algo local.ViewAlgorithm
}

// Name implements Algorithm.
func (a ViewConstruction) Name() string { return a.Algo.Name() }

// Run implements Algorithm.
func (a ViewConstruction) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return local.RunView(in, a.Algo, draw), nil
}

// RunOn implements EngineRunner.
func (a ViewConstruction) RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return eng.RunView(in, a.Algo, draw), nil
}

// RunBatch implements BatchRunner.
func (a ViewConstruction) RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	return bt.RunViewInstances(ins, a.Algo, draws)
}

// MessageConstruction adapts a message-passing algorithm.
type MessageConstruction struct {
	Algo local.MessageAlgorithm
	Opts local.RunOptions
}

// Name implements Algorithm.
func (a MessageConstruction) Name() string { return a.Algo.Name() }

// Run implements Algorithm.
func (a MessageConstruction) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	res, err := local.RunMessage(in, a.Algo, draw, a.Opts)
	if err != nil {
		return nil, err
	}
	return res.Y, nil
}

// RunOn implements EngineRunner.
func (a MessageConstruction) RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	res, err := eng.Run(in, a.Algo, draw, a.Opts)
	if err != nil {
		return nil, err
	}
	return res.Y, nil
}

// RunBatch implements BatchRunner.
func (a MessageConstruction) RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	rs, err := bt.RunInstances(ins, a.Algo, draws, a.Opts)
	if err != nil {
		return nil, err
	}
	ys := make([][][]byte, len(rs))
	for b, r := range rs {
		ys[b] = r.Y
	}
	return ys, nil
}

// RunShardedInstances implements ShardRunner: the lane vector runs
// across the Sharded's shards with per-round cut exchange.
func (a MessageConstruction) RunShardedInstances(sh *local.Sharded, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	rs, err := sh.RunInstances(ins, a.Algo, draws, a.Opts)
	if err != nil {
		return nil, err
	}
	ys := make([][][]byte, len(rs))
	for b, r := range rs {
		ys[b] = r.Y
	}
	return ys, nil
}

// RunStats runs the algorithm and also reports engine statistics; it
// errors for pure view algorithms, which have no message rounds.
func (a MessageConstruction) RunStats(in *lang.Instance, draw *localrand.Draw) (*local.Result, error) {
	return local.RunMessage(in, a.Algo, draw, a.Opts)
}

// Pipeline chains algorithms: the output of stage i becomes the input x
// of stage i+1 (the original input is visible only to stage 1). Each
// stage receives an independent sub-draw so stages do not share
// randomness.
type Pipeline struct {
	PipeName string
	Stages   []Algorithm
}

// Name implements Algorithm.
func (p Pipeline) Name() string {
	if p.PipeName != "" {
		return p.PipeName
	}
	name := "pipeline("
	for i, s := range p.Stages {
		if i > 0 {
			name += " | "
		}
		name += s.Name()
	}
	return name + ")"
}

// Run implements Algorithm.
func (p Pipeline) Run(in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return p.run(nil, in, draw)
}

// RunOn implements EngineRunner. Every stage runs on the same graph, so
// one engine serves the whole pipeline.
func (p Pipeline) RunOn(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	return p.run(eng, in, draw)
}

// RunBatch implements BatchRunner: every stage runs its whole lane
// vector through the batch, with stage i's lane outputs becoming stage
// i+1's lane inputs and each lane deriving the same per-stage sub-draws
// as the scalar path.
func (p Pipeline) RunBatch(bt *local.Batch, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("construct: empty pipeline")
	}
	k := len(ins)
	cur := make([]*lang.Instance, k)
	copy(cur, ins)
	var subs []localrand.Draw
	if draws != nil {
		subs = make([]localrand.Draw, k)
	}
	var ys [][][]byte
	for i, stage := range p.Stages {
		if draws != nil {
			for b := range subs {
				subs[b] = draws[b].Derive(uint64(i))
			}
		}
		y, err := Exec{Bt: bt}.RunInstances(stage, cur, subs)
		if err != nil {
			return nil, fmt.Errorf("construct: stage %d (%s): %w", i, stage.Name(), err)
		}
		ys = y
		for b := range cur {
			cur[b] = &lang.Instance{G: cur[b].G, X: y[b], ID: cur[b].ID}
		}
	}
	return ys, nil
}

// RunShardedInstances implements ShardRunner: every stage runs its lane
// vector across the shards (message stages sharded, view stages on the
// companion batch), with stage outputs threading into the next stage's
// inputs exactly as RunBatch does.
func (p Pipeline) RunShardedInstances(sh *local.Sharded, ins []*lang.Instance, draws []localrand.Draw) ([][][]byte, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("construct: empty pipeline")
	}
	k := len(ins)
	cur := make([]*lang.Instance, k)
	copy(cur, ins)
	var subs []localrand.Draw
	if draws != nil {
		subs = make([]localrand.Draw, k)
	}
	var ys [][][]byte
	for i, stage := range p.Stages {
		if draws != nil {
			for b := range subs {
				subs[b] = draws[b].Derive(uint64(i))
			}
		}
		y, err := Exec{Sh: sh}.RunInstances(stage, cur, subs)
		if err != nil {
			return nil, fmt.Errorf("construct: stage %d (%s): %w", i, stage.Name(), err)
		}
		ys = y
		for b := range cur {
			cur[b] = &lang.Instance{G: cur[b].G, X: y[b], ID: cur[b].ID}
		}
	}
	return ys, nil
}

// run executes the stages, on the pooled engine when one is given.
func (p Pipeline) run(eng *local.Engine, in *lang.Instance, draw *localrand.Draw) ([][]byte, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("construct: empty pipeline")
	}
	cur := in
	var y [][]byte
	for i, stage := range p.Stages {
		var sub *localrand.Draw
		if draw != nil {
			d := draw.Derive(uint64(i))
			sub = &d
		}
		var err error
		if eng != nil {
			y, err = runOn(stage, eng, cur, sub)
		} else {
			y, err = stage.Run(cur, sub)
		}
		if err != nil {
			return nil, fmt.Errorf("construct: stage %d (%s): %w", i, stage.Name(), err)
		}
		cur = &lang.Instance{G: cur.G, X: y, ID: cur.ID}
	}
	return y, nil
}
