package construct

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// LubyMIS is Luby's randomized maximal-independent-set algorithm, the
// standard O(log n)-round Monte-Carlo construction. Phases take two
// rounds: in the value round every undecided node broadcasts a random
// (value, id) pair and the strict local minimum among undecided nodes
// joins the set; in the announce round joiners notify their neighbors,
// who drop out. The output marks members with the selection byte.
type LubyMIS struct{}

// Name implements local.MessageAlgorithm.
func (LubyMIS) Name() string { return "luby-mis" }

// NewProcess implements local.MessageAlgorithm.
func (LubyMIS) NewProcess() local.Process { return &lubyProc{} }

type lubyStatus int

const (
	lubyUndecided lubyStatus = iota
	lubyIn
	lubyOut
)

// lubyVal is a totally ordered random value (ties broken by identity).
type lubyVal struct {
	R  uint64
	ID int64
}

func (a lubyVal) less(b lubyVal) bool {
	if a.R != b.R {
		return a.R < b.R
	}
	return a.ID < b.ID
}

// lubyJoin announces that the sender joined the independent set.
type lubyJoin struct{}

type lubyProc struct {
	tape   *localrand.Tape
	id     int64
	status lubyStatus
	val    lubyVal
}

func (p *lubyProc) Start(info local.NodeInfo) []local.Message {
	p.tape = info.Tape
	p.id = info.ID
	p.val = lubyVal{R: p.tape.Uint64(), ID: p.id}
	return broadcast(p.val, info.Degree)
}

func (p *lubyProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	if round%2 == 1 {
		// Value round just completed: join if strictly smaller than every
		// undecided neighbor (decided neighbors are silent).
		isMin := true
		for _, m := range received {
			if m == nil {
				continue
			}
			if v, ok := m.(lubyVal); ok && v.less(p.val) {
				isMin = false
				break
			}
		}
		if isMin {
			p.status = lubyIn
			// Final act: announce membership, then stop.
			return broadcast(lubyJoin{}, len(received)), true
		}
		return make([]local.Message, len(received)), false
	}
	// Announce round just completed: drop out next to a member.
	for _, m := range received {
		if m == nil {
			continue
		}
		if _, ok := m.(lubyJoin); ok {
			p.status = lubyOut
			return nil, true
		}
	}
	// Still undecided: draw a fresh value for the next phase.
	p.val = lubyVal{R: p.tape.Uint64(), ID: p.id}
	return broadcast(p.val, len(received)), false
}

func (p *lubyProc) Output() []byte {
	return lang.EncodeSelected(p.status == lubyIn)
}

// LubyMISAlgorithm packages Luby's MIS as a construction algorithm.
func LubyMISAlgorithm() Algorithm {
	return MessageConstruction{Algo: LubyMIS{}}
}

// WeakColoringViaMIS composes MIS with the zero-round map selected -> 0,
// unselected -> 1. The result is a weak 2-coloring on graphs with minimum
// degree >= 1: members have only non-members around them (independence),
// and every non-member has a member neighbor (maximality). This replaces
// the Naor–Stockmeyer constant-time odd-degree construction; see the
// substitution table in DESIGN.md.
func WeakColoringViaMIS() Algorithm {
	return Pipeline{
		PipeName: "weak-2-coloring(mis)",
		Stages: []Algorithm{
			LubyMISAlgorithm(),
			ViewConstruction{Algo: local.ViewFunc{
				AlgoName: "mis-to-color",
				R:        0,
				F: func(v *local.View) []byte {
					sel, err := lang.DecodeSelected(v.X[0])
					if err != nil || !sel {
						return lang.EncodeColor(1)
					}
					return lang.EncodeColor(0)
				},
			}},
		},
	}
}
