package construct

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// LubyMIS is Luby's randomized maximal-independent-set algorithm, the
// standard O(log n)-round Monte-Carlo construction. Phases take two
// rounds: in the value round every undecided node broadcasts a random
// (value, id) pair and the strict local minimum among undecided nodes
// joins the set; in the announce round joiners notify their neighbors,
// who drop out. The output marks members with the selection byte.
type LubyMIS struct{}

// Name implements local.MessageAlgorithm.
func (LubyMIS) Name() string { return "luby-mis" }

// MsgWords implements local.WireAlgorithm: a value message is two words
// (random word, identity); a join announcement is a zero-word signal.
func (LubyMIS) MsgWords(int) int { return 2 }

// NewWireProcess implements local.WireAlgorithm.
func (LubyMIS) NewWireProcess() local.WireProcess { return &lubyProc{} }

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (LubyMIS) NewProcess() local.Process { return local.NewLegacyProcess(LubyMIS{}) }

type lubyStatus int

const (
	lubyUndecided lubyStatus = iota
	lubyIn
	lubyOut
)

// lubyVal is a totally ordered random value (ties broken by identity).
type lubyVal struct {
	R  uint64
	ID int64
}

func (a lubyVal) less(b lubyVal) bool {
	if a.R != b.R {
		return a.R < b.R
	}
	return a.ID < b.ID
}

// Wire codec. A value message is exactly two words [R, ID]; a join
// announcement is a zero-word signal, so the payload length alone
// distinguishes the two kinds.

// broadcastLubyVal stages a value message on every port.
func broadcastLubyVal(out *local.Outbox, v lubyVal) {
	out.BroadcastVec(v.R, uint64(v.ID))
}

// decodeLubyVal rejects anything but a two-word value message.
func decodeLubyVal(words []uint64) (lubyVal, bool) {
	if len(words) != 2 {
		return lubyVal{}, false
	}
	return lubyVal{R: words[0], ID: int64(words[1])}, true
}

// decodeLubyJoin rejects any join announcement carrying payload words.
func decodeLubyJoin(words []uint64) bool { return len(words) == 0 }

type lubyProc struct {
	tape   *localrand.Tape
	id     int64
	status lubyStatus
	val    lubyVal
}

// ResetProcess implements local.ResetProcess: engines pool Luby process
// tables across trials instead of allocating one per (node, lane) per
// run.
func (p *lubyProc) ResetProcess() { *p = lubyProc{} }

func (p *lubyProc) Start(info local.NodeInfo, out *local.Outbox) {
	p.tape = info.Tape
	p.id = info.ID
	p.val = lubyVal{R: p.tape.Uint64(), ID: p.id}
	broadcastLubyVal(out, p.val)
}

func (p *lubyProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	if round%2 == 1 {
		// Value round just completed: join if strictly smaller than every
		// undecided neighbor (decided neighbors are silent).
		isMin := true
		for port := 0; port < in.Degree(); port++ {
			words, has := in.Payload(port)
			if !has {
				continue
			}
			v, ok := decodeLubyVal(words)
			if !ok {
				panic("construct: Luby MIS received a malformed value message")
			}
			if v.less(p.val) {
				isMin = false
				break
			}
		}
		if isMin {
			p.status = lubyIn
			// Final act: announce membership, then stop.
			out.SignalAll()
			return true
		}
		return false
	}
	// Announce round just completed: drop out next to a member.
	for port := 0; port < in.Degree(); port++ {
		words, has := in.Payload(port)
		if !has {
			continue
		}
		if !decodeLubyJoin(words) {
			panic("construct: Luby MIS received a malformed join announcement")
		}
		p.status = lubyOut
		return true
	}
	// Still undecided: draw a fresh value for the next phase.
	p.val = lubyVal{R: p.tape.Uint64(), ID: p.id}
	broadcastLubyVal(out, p.val)
	return false
}

func (p *lubyProc) Output() []byte {
	return lang.EncodeSelected(p.status == lubyIn)
}

// NewVecProcess implements local.VecAlgorithm: one SoA process per node
// steps every lane of a batch in a single call per round.
func (LubyMIS) NewVecProcess() local.VecProcess { return &lubyVec{} }

// lubyVec is lubyProc across all lanes as struct-of-arrays: lane b's
// scalar process state lives at index b of each row. The per-port decode
// (lens check, word block base) hoists out of the lane loop, and the
// inner loops walk the slab's contiguous per-slot lane ranges.
type lubyVec struct {
	tapes  []*localrand.Tape
	id     []int64
	status []uint8 // lubyStatus values
	valR   []uint64
	valID  []int64
	idW    []uint64 // valID as wire words, set once at StartVec
	act    []bool   // scratch: lanes this call acts for
	flag   []bool   // scratch: per-lane early-exit flag of the port scan
}

// ResetVec implements local.ResetVecProcess. Tape pointers alias the
// engine's per-run tape slab and must not outlive the run.
func (p *lubyVec) ResetVec() { clear(p.tapes) }

func (p *lubyVec) ensure(k int) {
	p.tapes = vecRow(p.tapes, k)
	p.id = vecRow(p.id, k)
	p.status = vecRow(p.status, k)
	p.valR = vecRow(p.valR, k)
	p.valID = vecRow(p.valID, k)
	p.idW = vecRow(p.idW, k)
	p.act = vecRow(p.act, k)
	p.flag = vecRow(p.flag, k)
}

func (p *lubyVec) StartVec(info *local.VecNodeInfo, out *local.OutboxVec) {
	k := info.Lanes()
	p.ensure(k)
	for b := 0; b < k; b++ {
		t := info.Tape(b)
		id := info.ID(b)
		p.tapes[b] = t
		p.id[b] = id
		p.status[b] = uint8(lubyUndecided)
		p.valR[b] = t.Uint64()
		p.valID[b] = id
		p.idW[b] = uint64(id)
		p.act[b] = true
	}
	out.BroadcastRow2(p.valR, p.idW, p.act)
}

func (p *lubyVec) StepVec(round int, in *local.InboxVec, out *local.OutboxVec, done []bool) {
	k, mask := in.Lanes(), in.Mask()
	act := p.act[:k]
	for b := 0; b < k; b++ {
		act[b] = !done[b] && (mask == nil || !mask[b])
	}
	deg := in.Degree()
	if round%2 == 1 {
		// Value round just completed: join if strictly smaller than every
		// undecided neighbor (decided neighbors are silent). isMin starts
		// true per running lane and clears on the first smaller neighbor,
		// after which the lane skips the rest of the scan — the same ports
		// the scalar process's break never validated.
		isMin := p.flag[:k]
		copy(isMin, act)
		for port := 0; port < deg; port++ {
			lens := in.LensRow(port)
			words, stride := in.WordBlock(port)
			for b := 0; b < k; b++ {
				if !isMin[b] {
					continue
				}
				l := lens[b]
				if l == 0 {
					continue
				}
				if l != 3 {
					panic("construct: Luby MIS received a malformed value message")
				}
				r := words[b*stride]
				if r < p.valR[b] || (r == p.valR[b] && int64(words[b*stride+1]) < p.valID[b]) {
					isMin[b] = false
				}
			}
		}
		for b := 0; b < k; b++ {
			if isMin[b] {
				p.status[b] = uint8(lubyIn)
				done[b] = true
			}
		}
		// Final act of the joiners: announce membership, then stop.
		out.SignalRow(isMin)
		return
	}
	// Announce round just completed: drop out next to a member. A lane
	// stops scanning at its first join signal, exactly like the scalar
	// early return.
	drop := p.flag[:k]
	clear(drop)
	for port := 0; port < deg; port++ {
		lens := in.LensRow(port)
		for b := 0; b < k; b++ {
			if !act[b] || drop[b] {
				continue
			}
			l := lens[b]
			if l == 0 {
				continue
			}
			if l != 1 {
				panic("construct: Luby MIS received a malformed join announcement")
			}
			drop[b] = true
		}
	}
	for b := 0; b < k; b++ {
		if !act[b] {
			continue
		}
		if drop[b] {
			p.status[b] = uint8(lubyOut)
			done[b] = true
			act[b] = false
			continue
		}
		// Still undecided: draw a fresh value for the next phase.
		p.valR[b] = p.tapes[b].Uint64()
	}
	out.BroadcastRow2(p.valR, p.idW, act)
}

func (p *lubyVec) OutputVec(b int) []byte {
	return lang.EncodeSelected(p.status[b] == uint8(lubyIn))
}

// LubyMISAlgorithm packages Luby's MIS as a construction algorithm.
func LubyMISAlgorithm() Algorithm {
	return MessageConstruction{Algo: LubyMIS{}}
}

// WeakColoringViaMIS composes MIS with the zero-round map selected -> 0,
// unselected -> 1. The result is a weak 2-coloring on graphs with minimum
// degree >= 1: members have only non-members around them (independence),
// and every non-member has a member neighbor (maximality). This replaces
// the Naor–Stockmeyer constant-time odd-degree construction; see the
// substitution table in DESIGN.md.
func WeakColoringViaMIS() Algorithm {
	return Pipeline{
		PipeName: "weak-2-coloring(mis)",
		Stages: []Algorithm{
			LubyMISAlgorithm(),
			ViewConstruction{Algo: local.ViewFunc{
				AlgoName: "mis-to-color",
				R:        0,
				F: func(v *local.View) []byte {
					sel, err := lang.DecodeSelected(v.X[0])
					if err != nil || !sel {
						return lang.EncodeColor(1)
					}
					return lang.EncodeColor(0)
				},
			}},
		},
	}
}
