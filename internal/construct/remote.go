package construct

import (
	"fmt"

	"rlnc/internal/local"
)

// This file makes the construction algorithms process-portable: each
// registers a builder under a stable key so a shard-worker process
// (`rlnc shard-worker`) reconstructs an identical algorithm from the
// orchestrator's (key, params) pair, and implements RemoteSpec so remote
// sharded executors recognize it. Registration and reconstruction run in
// the same binary, so the mapping cannot skew.

func init() {
	local.RegisterRemoteAlgorithm("retry-coloring", func(p []int64) (local.MessageAlgorithm, error) {
		if len(p) != 2 {
			return nil, fmt.Errorf("construct: retry-coloring wants (q, t), got %d params", len(p))
		}
		return retryAlgo{q: int(p[0]), t: int(p[1])}, nil
	})
	local.RegisterRemoteAlgorithm("luby-mis", func(p []int64) (local.MessageAlgorithm, error) {
		return LubyMIS{}, nil
	})
	local.RegisterRemoteAlgorithm("edge-luby-matching", func(p []int64) (local.MessageAlgorithm, error) {
		return EdgeLubyMatching{}, nil
	})
	local.RegisterRemoteAlgorithm("cole-vishkin", func(p []int64) (local.MessageAlgorithm, error) {
		if len(p) != 1 {
			return nil, fmt.Errorf("construct: cole-vishkin wants (maxIDBits), got %d params", len(p))
		}
		return ColeVishkin{MaxIDBits: int(p[0])}, nil
	})
	local.RegisterRemoteAlgorithm("greedy-mis-from-coloring", func(p []int64) (local.MessageAlgorithm, error) {
		if len(p) != 1 {
			return nil, fmt.Errorf("construct: greedy-mis wants (q), got %d params", len(p))
		}
		return GreedyMISFromColoring{Q: int(p[0])}, nil
	})
}

// RemoteSpec implements local.RemoteAlgorithm.
func (a retryAlgo) RemoteSpec() (string, []int64) {
	return "retry-coloring", []int64{int64(a.q), int64(a.t)}
}

// RemoteSpec implements local.RemoteAlgorithm.
func (LubyMIS) RemoteSpec() (string, []int64) { return "luby-mis", nil }

// RemoteSpec implements local.RemoteAlgorithm.
func (EdgeLubyMatching) RemoteSpec() (string, []int64) { return "edge-luby-matching", nil }

// RemoteSpec implements local.RemoteAlgorithm.
func (a ColeVishkin) RemoteSpec() (string, []int64) {
	return "cole-vishkin", []int64{int64(a.MaxIDBits)}
}

// RemoteSpec implements local.RemoteAlgorithm.
func (a GreedyMISFromColoring) RemoteSpec() (string, []int64) {
	return "greedy-mis-from-coloring", []int64{int64(a.Q)}
}
