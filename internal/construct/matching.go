package construct

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// EdgeLubyMatching computes a maximal matching by running Luby's
// algorithm on the line graph: in every phase each active edge gets a
// random totally ordered value (drawn by its higher-identity endpoint and
// shipped across), endpoints exchange their incident value lists, and an
// edge whose value is the strict minimum among all adjacent edges joins
// the matching. Matched nodes announce themselves; edges touching matched
// nodes deactivate. Maximality: an edge between two unmatched nodes stays
// active, and Luby's argument guarantees every active edge is eventually
// resolved (O(log n) phases with high probability).
//
// Outputs use the port encoding of lang.MaximalMatching: the host port of
// the matched edge, or the unmatched sentinel.
type EdgeLubyMatching struct{}

// Name implements local.MessageAlgorithm.
func (EdgeLubyMatching) Name() string { return "edge-luby-matching" }

// MsgWords implements local.WireAlgorithm: the widest message is a share
// list of up to degree edge values at three words each (a draw is one
// value, an announcement is a zero-word signal).
func (EdgeLubyMatching) MsgWords(degree int) int { return 3 * degree }

// NewWireProcess implements local.WireAlgorithm.
func (EdgeLubyMatching) NewWireProcess() local.WireProcess { return &matchProc{} }

// NewProcess implements the legacy local.MessageAlgorithm interface.
func (EdgeLubyMatching) NewProcess() local.Process { return local.NewLegacyProcess(EdgeLubyMatching{}) }

// matchVal totally orders edges: random word, then the drawing endpoint's
// identity and port for tie-breaking.
type matchVal struct {
	R     uint64
	HID   int64
	HPort int
}

func (a matchVal) less(b matchVal) bool {
	switch {
	case a.R != b.R:
		return a.R < b.R
	case a.HID != b.HID:
		return a.HID < b.HID
	default:
		return a.HPort < b.HPort
	}
}

// Phase messages and their wire codec. Draw: the higher endpoint ships
// the edge value — three words [R, HID, HPort]. Share: each node ships
// the values of all its active edges — 3k words, k >= 1 values in port
// order. Announce: a matched node tells its neighbors — a zero-word
// signal. The three-round phase schedule (round mod 3) determines which
// kind a received payload is.

// appendMatchVal appends one edge value (three words) to port's message.
func appendMatchVal(out *local.Outbox, port int, v matchVal) {
	out.Append(port, v.R)
	out.Append(port, uint64(v.HID))
	out.Append(port, uint64(v.HPort))
}

// matchValAt reads the i-th edge value of a share or draw payload.
func matchValAt(words []uint64, i int) matchVal {
	return matchVal{R: words[3*i], HID: int64(words[3*i+1]), HPort: int(words[3*i+2])}
}

// decodeMatchDraw rejects anything but a single three-word edge value.
func decodeMatchDraw(words []uint64) (matchVal, bool) {
	if len(words) != 3 {
		return matchVal{}, false
	}
	return matchValAt(words, 0), true
}

// decodeMatchShare validates a share list: a positive multiple of three
// words. It returns the value count; values are read via matchValAt.
func decodeMatchShare(words []uint64) (int, bool) {
	if len(words) == 0 || len(words)%3 != 0 {
		return 0, false
	}
	return len(words) / 3, true
}

// decodeMatchAnnounce rejects any announcement carrying payload words.
func decodeMatchAnnounce(words []uint64) bool { return len(words) == 0 }

type matchProc struct {
	tape    *localrand.Tape
	id      int64
	active  []bool
	edgeVal []matchVal
	pending []matchVal // own candidates for the current phase
	matched int        // matched port, or -1
}

// sendDraws draws fresh candidates for the active ports (in port order,
// one tape word each) and ships them.
func (p *matchProc) sendDraws(out *local.Outbox) {
	for port, a := range p.active {
		if !a {
			continue
		}
		cand := matchVal{R: p.tape.Uint64(), HID: p.id, HPort: port}
		p.pending[port] = cand
		out.Send(port, cand.R)
		out.Append(port, uint64(cand.HID))
		out.Append(port, uint64(cand.HPort))
	}
}

// ResetProcess implements local.ResetProcess: the per-port buffers keep
// their capacity (Start reinitializes their contents), everything else —
// the tape above all — is dropped.
func (p *matchProc) ResetProcess() {
	p.tape = nil
	p.id = 0
	p.matched = -1
}

// reuseSlice returns s resized to n elements, reusing its backing array
// when the capacity allows; the caller reinitializes the contents.
func reuseSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func (p *matchProc) Start(info local.NodeInfo, out *local.Outbox) {
	p.tape = info.Tape
	p.id = info.ID
	p.active = reuseSlice(p.active, info.Degree)
	for i := range p.active {
		p.active[i] = true
	}
	p.edgeVal = reuseSlice(p.edgeVal, info.Degree)
	clear(p.edgeVal)
	p.pending = reuseSlice(p.pending, info.Degree)
	clear(p.pending)
	p.matched = -1
	// Draw round: both endpoints ship candidates; the higher-identity
	// endpoint's candidate becomes the edge value on both sides.
	p.sendDraws(out)
}

func (p *matchProc) Step(round int, in *local.Inbox, out *local.Outbox) bool {
	deg := in.Degree()
	switch round % 3 {
	case 1: // draw messages arrived; fix edge values, ship share lists
		for port := 0; port < deg; port++ {
			if !in.Has(port) || !p.active[port] {
				continue
			}
			v, ok := decodeMatchDraw(in.Words(port))
			if !ok {
				panic("construct: matching received a malformed draw message")
			}
			if v.HID > p.id {
				p.edgeVal[port] = v // the neighbor is the higher endpoint
			} else {
				p.edgeVal[port] = p.pending[port]
			}
		}
		for port, a := range p.active {
			if !a {
				continue
			}
			for q, aq := range p.active {
				if aq {
					appendMatchVal(out, port, p.edgeVal[q])
				}
			}
		}
		return false
	case 2: // share lists arrived; decide, announce
		best := -1
		for port, a := range p.active {
			if !a {
				continue
			}
			if p.isLocalMin(port, in) {
				best = port
				break // at most one edge at this node can be the local min
			}
		}
		if best >= 0 {
			p.matched = best
			for port, a := range p.active {
				if a {
					out.Signal(port)
				}
			}
			return true
		}
		return false
	default: // case 0: announcements arrived; deactivate, redraw
		for port := 0; port < deg; port++ {
			if !in.Has(port) {
				continue
			}
			if !decodeMatchAnnounce(in.Words(port)) {
				panic("construct: matching received a malformed announcement")
			}
			p.active[port] = false
		}
		if !p.anyActive() {
			return true // unmatched, but no augmenting edge remains
		}
		p.sendDraws(out)
		return false
	}
}

func (p *matchProc) isLocalMin(port int, in *local.Inbox) bool {
	v := p.edgeVal[port]
	// Compare against our own active edges.
	for q, a := range p.active {
		if !a || q == port {
			continue
		}
		if p.edgeVal[q].less(v) {
			return false
		}
	}
	// And against the neighbor's active edges.
	if !in.Has(port) {
		return false // neighbor went silent: treat as unresolved this phase
	}
	words := in.Words(port)
	k, ok := decodeMatchShare(words)
	if !ok {
		panic("construct: matching received a malformed share list")
	}
	for i := 0; i < k; i++ {
		if w := matchValAt(words, i); w != v && w.less(v) {
			return false
		}
	}
	return true
}

func (p *matchProc) anyActive() bool {
	for _, a := range p.active {
		if a {
			return true
		}
	}
	return false
}

func (p *matchProc) Output() []byte {
	return lang.EncodeMatchPort(p.matched, p.matched >= 0)
}

// MaximalMatchingAlgorithm packages the edge-Luby matching.
func MaximalMatchingAlgorithm() Algorithm {
	return MessageConstruction{Algo: EdgeLubyMatching{}}
}
