package construct

import (
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
)

// EdgeLubyMatching computes a maximal matching by running Luby's
// algorithm on the line graph: in every phase each active edge gets a
// random totally ordered value (drawn by its higher-identity endpoint and
// shipped across), endpoints exchange their incident value lists, and an
// edge whose value is the strict minimum among all adjacent edges joins
// the matching. Matched nodes announce themselves; edges touching matched
// nodes deactivate. Maximality: an edge between two unmatched nodes stays
// active, and Luby's argument guarantees every active edge is eventually
// resolved (O(log n) phases with high probability).
//
// Outputs use the port encoding of lang.MaximalMatching: the host port of
// the matched edge, or the unmatched sentinel.
type EdgeLubyMatching struct{}

// Name implements local.MessageAlgorithm.
func (EdgeLubyMatching) Name() string { return "edge-luby-matching" }

// NewProcess implements local.MessageAlgorithm.
func (EdgeLubyMatching) NewProcess() local.Process { return &matchProc{} }

// matchVal totally orders edges: random word, then the drawing endpoint's
// identity and port for tie-breaking.
type matchVal struct {
	R     uint64
	HID   int64
	HPort int
}

func (a matchVal) less(b matchVal) bool {
	switch {
	case a.R != b.R:
		return a.R < b.R
	case a.HID != b.HID:
		return a.HID < b.HID
	default:
		return a.HPort < b.HPort
	}
}

// Phase messages. Draw: the higher endpoint ships the edge value. Share:
// each node ships the values of all its active edges. Announce: a matched
// node tells its neighbors.
type matchDraw struct{ V matchVal }
type matchShare struct{ Vals []matchVal }
type matchAnnounce struct{}

type matchProc struct {
	tape    *localrand.Tape
	id      int64
	active  []bool
	edgeVal []matchVal
	pending []matchVal // own candidates for the current phase
	matched int        // matched port, or -1
}

func (p *matchProc) Start(info local.NodeInfo) []local.Message {
	p.tape = info.Tape
	p.id = info.ID
	p.active = make([]bool, info.Degree)
	for i := range p.active {
		p.active[i] = true
	}
	p.edgeVal = make([]matchVal, info.Degree)
	p.pending = make([]matchVal, info.Degree)
	p.matched = -1
	// Draw round: both endpoints ship candidates; the higher-identity
	// endpoint's candidate becomes the edge value on both sides.
	out := make([]local.Message, info.Degree)
	for port := range out {
		cand := matchVal{R: p.tape.Uint64(), HID: p.id, HPort: port}
		p.pending[port] = cand
		out[port] = matchDraw{V: cand}
	}
	return out
}

func (p *matchProc) Step(round int, received []local.Message) ([]local.Message, bool) {
	deg := len(received)
	switch round % 3 {
	case 1: // draw messages arrived; fix edge values, ship share lists
		for port, m := range received {
			if m == nil || !p.active[port] {
				continue
			}
			d := m.(matchDraw)
			if d.V.HID > p.id {
				p.edgeVal[port] = d.V // the neighbor is the higher endpoint
			} else {
				p.edgeVal[port] = p.pending[port]
			}
		}
		var vals []matchVal
		for port, a := range p.active {
			if a {
				vals = append(vals, p.edgeVal[port])
			}
		}
		out := make([]local.Message, deg)
		for port, a := range p.active {
			if a {
				out[port] = matchShare{Vals: vals}
			}
		}
		return out, false
	case 2: // share lists arrived; decide, announce
		best := -1
		for port, a := range p.active {
			if !a {
				continue
			}
			if p.isLocalMin(port, received) {
				best = port
				break // at most one edge at this node can be the local min
			}
		}
		if best >= 0 {
			p.matched = best
			return broadcastActive(matchAnnounce{}, p.active), true
		}
		return make([]local.Message, deg), false
	default: // case 0: announcements arrived; deactivate, redraw
		for port, m := range received {
			if m == nil {
				continue
			}
			if _, ok := m.(matchAnnounce); ok {
				p.active[port] = false
			}
		}
		if !p.anyActive() {
			return nil, true // unmatched, but no augmenting edge remains
		}
		p.pending = make([]matchVal, deg)
		out := make([]local.Message, deg)
		for port, a := range p.active {
			if !a {
				continue
			}
			cand := matchVal{R: p.tape.Uint64(), HID: p.id, HPort: port}
			p.pending[port] = cand
			out[port] = matchDraw{V: cand}
		}
		return out, false
	}
}

func (p *matchProc) isLocalMin(port int, received []local.Message) bool {
	v := p.edgeVal[port]
	// Compare against our own active edges.
	for q, a := range p.active {
		if !a || q == port {
			continue
		}
		if p.edgeVal[q].less(v) {
			return false
		}
	}
	// And against the neighbor's active edges.
	m := received[port]
	if m == nil {
		return false // neighbor went silent: treat as unresolved this phase
	}
	share := m.(matchShare)
	for _, w := range share.Vals {
		if w != v && w.less(v) {
			return false
		}
	}
	return true
}

func (p *matchProc) anyActive() bool {
	for _, a := range p.active {
		if a {
			return true
		}
	}
	return false
}

func (p *matchProc) Output() []byte {
	return lang.EncodeMatchPort(p.matched, p.matched >= 0)
}

// broadcastActive sends a payload on active ports only.
func broadcastActive(m local.Message, active []bool) []local.Message {
	out := make([]local.Message, len(active))
	for port, a := range active {
		if a {
			out[port] = m
		}
	}
	return out
}

// MaximalMatchingAlgorithm packages the edge-Luby matching.
func MaximalMatchingAlgorithm() Algorithm {
	return MessageConstruction{Algo: EdgeLubyMatching{}}
}
