package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "long-column"}}
	tb.AddRow(1, "x")
	tb.AddRow("wide-cell", 2.5)
	tb.AddNote("footnote %d", 7)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a", "long-column", "wide-cell", "2.5", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Alignment: header and separator lines have equal length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestResultChecksAndRender(t *testing.T) {
	r := &Result{}
	tb := r.NewTable("t", "c1")
	tb.AddRow("v")
	r.AddCheck("good", true, "fine %d", 1)
	if !r.AllChecksPass() {
		t.Error("single passing check reported as failing")
	}
	r.AddCheck("bad", false, "broken")
	if r.AllChecksPass() {
		t.Error("failing check not detected")
	}
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "[PASS] good") || !strings.Contains(out, "[FAIL] bad") {
		t.Errorf("check rendering wrong:\n%s", out)
	}
}

type fakeExp struct{ id string }

func (f fakeExp) ID() string                      { return f.id }
func (f fakeExp) Title() string                   { return "fake" }
func (f fakeExp) PaperRef() string                { return "nowhere" }
func (f fakeExp) Run(cfg Config) (*Result, error) { return &Result{}, nil }

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(fakeExp{id: "Zdup"})
	Register(fakeExp{id: "zdup"}) // case-insensitive duplicate
}

func TestByIDCaseInsensitive(t *testing.T) {
	Register(fakeExp{id: "Zcase"})
	if _, ok := ByID("zCASE"); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

func TestAllSortsNumerically(t *testing.T) {
	Register(fakeExp{id: "Z2"})
	Register(fakeExp{id: "Z10"})
	all := All()
	pos := map[string]int{}
	for i, e := range all {
		pos[e.ID()] = i
	}
	if pos["Z2"] > pos["Z10"] {
		t.Error("numeric ordering broken: Z2 after Z10")
	}
}

func TestIDOrder(t *testing.T) {
	if idOrder("E12") != 12 || idOrder("E1") != 1 || idOrder("x") != 0 {
		t.Error("idOrder parsing wrong")
	}
}
