package report

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the canonical-encoding core of the content-addressed run
// store (internal/serve): a run's identity is the hash of its canonical
// configuration, so "same config + same seed" resolves to the same run
// ID on every host, across process restarts, and across field-order and
// whitespace variations of the submitted JSON. Experiments are
// deterministic functions of their canonical configuration — that is the
// determinism-by-construction the whole repository pins with golden
// tests — so a stored result table is exactly re-servable for any
// resubmission that canonicalizes to the same bytes.
//
// The encoding is deliberately boring: one "key=value" line per field,
// keys sorted, values rendered by a fixed, locale-free formatter, under
// a versioned header. Anything that changes a run's output must appear
// as a field; anything that cannot change the output (submission time,
// client identity, HTTP framing) must not.

// CanonVersion is the canonical-encoding version, baked into every
// encoding's header line. Bump it whenever the experiment substrate
// changes observable output for identical configurations (an engine
// migration that legitimately moves table bytes, a changed default),
// so stale stored tables miss instead of serving the old bytes.
const CanonVersion = 1

// Canon accumulates the canonical form of one run configuration as
// key=value pairs. The zero value is ready to use; keys must be
// non-empty, free of '=' and newlines, and unique — violations panic,
// since they indicate a programming error in the caller's field
// enumeration, not bad user input.
type Canon struct {
	pairs map[string]string
}

// put installs one rendered pair, enforcing key hygiene.
func (c *Canon) put(key, val string) {
	if key == "" || strings.ContainsAny(key, "=\n") {
		panic(fmt.Sprintf("report: canonical key %q invalid", key))
	}
	if strings.Contains(val, "\n") {
		panic(fmt.Sprintf("report: canonical value for %q contains a newline", key))
	}
	if c.pairs == nil {
		c.pairs = make(map[string]string)
	}
	if _, dup := c.pairs[key]; dup {
		panic(fmt.Sprintf("report: canonical key %q set twice", key))
	}
	c.pairs[key] = val
}

// PutString records a string field verbatim (it must not contain
// newlines).
func (c *Canon) PutString(key, v string) { c.put(key, v) }

// PutInt records an integer field.
func (c *Canon) PutInt(key string, v int64) { c.put(key, strconv.FormatInt(v, 10)) }

// PutUint records an unsigned integer field.
func (c *Canon) PutUint(key string, v uint64) { c.put(key, strconv.FormatUint(v, 10)) }

// PutBool records a boolean field.
func (c *Canon) PutBool(key string, v bool) { c.put(key, strconv.FormatBool(v)) }

// PutFloat records a float field exactly: the value is rendered in
// hexadecimal floating-point ('x', -1), which round-trips every float64
// bit pattern — two configurations hash alike iff their floats are
// bitwise equal, so no decimal-formatting ambiguity can alias two
// different fault probabilities onto one run ID. NaN is rejected: a
// NaN-bearing configuration has no meaningful identity.
func (c *Canon) PutFloat(key string, v float64) {
	if math.IsNaN(v) {
		panic(fmt.Sprintf("report: canonical float %q is NaN", key))
	}
	c.put(key, strconv.FormatFloat(v, 'x', -1, 64))
}

// PutInts records an integer-slice field as a comma-joined list.
func (c *Canon) PutInts(key string, vs []int64) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(v, 10)
	}
	c.put(key, strings.Join(parts, ","))
}

// Encode renders the canonical byte form: the versioned header line
// followed by every key=value pair in sorted key order, one per line.
// Equal configurations encode to equal bytes regardless of Put order.
func (c *Canon) Encode() []byte {
	keys := make([]string, 0, len(c.pairs))
	for k := range c.pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "rlnc-canon/%d\n", CanonVersion)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(c.pairs[k])
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Hash returns the run ID of the canonical form: the hex SHA-256 of
// Encode, truncated to 32 hex digits (128 bits — collision-free for any
// conceivable run population, short enough for URLs and directory
// names).
func (c *Canon) Hash() string {
	sum := sha256.Sum256(c.Encode())
	return hex.EncodeToString(sum[:16])
}
