// Package report renders experiment output: fixed-width tables (the
// repository's equivalent of the paper's displayed claims), qualitative
// checks with pass/fail verdicts, and the experiment registry driving the
// CLI and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rlnc/internal/local"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with fmt.Sprint. Numeric
// formatting is the caller's business (use fmt.Sprintf cells for
// precision control).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Check is a programmatic verdict: the experiment's assertion that the
// measured shape matches the paper's claim.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is everything one experiment produces.
type Result struct {
	Tables []*Table
	Checks []Check
}

// NewTable allocates a table and attaches it to the result.
func (r *Result) NewTable(title string, columns ...string) *Table {
	t := &Table{Title: title, Columns: columns}
	r.Tables = append(r.Tables, t)
	return t
}

// AddCheck records a verdict.
func (r *Result) AddCheck(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// AllChecksPass reports whether every check succeeded.
func (r *Result) AllChecksPass() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Render writes tables and checks.
func (r *Result) Render(w io.Writer) {
	for _, t := range r.Tables {
		t.Render(w)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s: %s\n", status, c.Name, c.Detail)
	}
}

// Header renders the experiment banner exactly as the CLI prints it
// before a run: the ID/title line and the paper reference, followed by a
// blank line. RunText composes it with the rendered result; the two are
// shared by `rlnc run` and the serve layer so their output bytes cannot
// diverge.
func Header(e Experiment) string {
	return fmt.Sprintf("=== %s — %s\n    reproduces %s\n\n", e.ID(), e.Title(), e.PaperRef())
}

// RunText renders one completed experiment run byte-identically to the
// CLI: Header, the result's tables and checks, and the trailing blank
// line `rlnc run` emits between experiments. The serve layer stores and
// serves exactly these bytes, which is what lets an HTTP-fetched table
// diff clean against the committed CLI goldens.
func RunText(e Experiment, res *Result) []byte {
	var b strings.Builder
	b.WriteString(Header(e))
	res.Render(&b)
	b.WriteByte('\n')
	return []byte(b.String())
}

// Config tunes an experiment run.
type Config struct {
	// Quick reduces trial counts and sweep sizes for CI and benchmarks.
	Quick bool
	// Seed feeds every tape space the experiment creates.
	Seed uint64
	// Shards, when > 1, runs message-algorithm trial loops on a sharded
	// engine of that many shards (clamped per graph to its node count).
	// Every trial's outputs are byte-identical to the unsharded run;
	// aggregated tables are additionally byte-identical whenever the
	// Monte-Carlo worker chunking coincides (shard groups shrink the
	// pool, which can regroup float accumulation — pin GOMAXPROCS to
	// one, as the golden tests do, for exact table equality). The knob
	// exists to exercise the multi-machine execution path end to end.
	Shards int
	// Fault, when non-nil and enabled, arms the fault plan on every trial
	// executor the experiment builds — batched and sharded alike — so the
	// whole sweep runs under the same seeded drop/delay/crash schedule
	// (`rlnc run -drop/-delay/-crash ...`). Faulty trials stay
	// deterministic: the plan's fault tape is keyed by (round, global
	// slot, lane), so per-trial outputs are byte-identical across batch
	// widths and shard counts, exactly like the fault-free path. A nil or
	// zero plan reproduces fault-free runs bit for bit.
	Fault *local.FaultPlan
	// NewSharded, when set, builds the sharded executors the trial loops
	// use instead of the default in-process one — the CLI injects the
	// loopback-TCP transport and the shard-worker process pool through
	// it (`rlnc run -transport ...`, spawned loopback workers or a
	// `-control` multi-host fleet). A provider may refuse (a worker pool
	// serves one executor at a time); the trial loop then falls back to
	// a plain batch, which the sharding contract keeps byte-identical.
	// Providers are also the recovery path: when a chunk fails because a
	// worker process died, the Monte-Carlo scheduler closes the chunk's
	// executor and calls the provider again, which builds from the
	// pool's surviving workers (or refuses, degrading to the local
	// batch) — so trial sweeps ride out mid-run worker deaths with
	// unchanged output bytes. Executors are Closed when their worker
	// retires.
	NewSharded func(plan *local.Plan, width, shards int) (*local.Sharded, error)
	// Progress, when set, observes every Monte-Carlo sweep the experiment
	// runs: each sweep reports (0, total) once before its first trial
	// chunk executes — total being that sweep's chunk count — and the
	// cumulative completed-chunk count after each chunk (mc.Executor's
	// Progress contract). An experiment typically runs many sweeps (one
	// per table cell), so callers count the (0, total) events to number
	// phases. Per-chunk calls arrive concurrently from trial workers; the
	// callback must be safe for concurrent use and must not panic. The
	// serve layer's SSE progress stream is this hook.
	Progress func(done, total int)
}

// Experiment is one entry of the per-experiment index in DESIGN.md.
type Experiment interface {
	// ID is the index key, e.g. "E1".
	ID() string
	// Title is a one-line description.
	Title() string
	// PaperRef cites the statement reproduced, e.g. "§2.3.1 example".
	PaperRef() string
	// Run executes the experiment.
	Run(cfg Config) (*Result, error)
}

// registry of experiments, keyed by lower-cased ID.
var registry = map[string]Experiment{}

// Register adds an experiment; duplicate IDs panic at init time.
func Register(e Experiment) {
	key := strings.ToLower(e.ID())
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("report: duplicate experiment %s", e.ID()))
	}
	registry[key] = e
}

// ByID looks an experiment up (case-insensitive).
func ByID(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns the experiments sorted by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return idOrder(out[i].ID()) < idOrder(out[j].ID())
	})
	return out
}

func idOrder(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
