package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestCanonOrderIndependence pins the content-addressing contract: the
// encoded bytes (hence the run ID) depend only on the key/value set,
// never on insertion order.
func TestCanonOrderIndependence(t *testing.T) {
	var a, b Canon
	a.PutString("experiment", "E2")
	a.PutUint("seed", 7)
	a.PutBool("quick", true)
	a.PutFloat("fault.drop", 0.25)
	b.PutFloat("fault.drop", 0.25)
	b.PutBool("quick", true)
	b.PutUint("seed", 7)
	b.PutString("experiment", "E2")
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("encodings differ:\n%s\nvs\n%s", a.Encode(), b.Encode())
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("hashes differ: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 32 {
		t.Fatalf("hash length %d, want 32 hex digits", len(a.Hash()))
	}
}

// TestCanonFieldSensitivity pins that every field kind perturbs the
// hash: flipping any single value must change the run ID, or the store
// would serve one configuration's table for another.
func TestCanonFieldSensitivity(t *testing.T) {
	ref := canonWith("E2", 7, true, 2, 0.1, []int64{3, 4}).Hash()
	flips := []struct {
		name string
		c    func() *Canon
	}{
		{"experiment", func() *Canon { return canonWith("E3", 7, true, 2, 0.1, []int64{3, 4}) }},
		{"seed", func() *Canon { return canonWith("E2", 8, true, 2, 0.1, []int64{3, 4}) }},
		{"quick", func() *Canon { return canonWith("E2", 7, false, 2, 0.1, []int64{3, 4}) }},
		{"shards", func() *Canon { return canonWith("E2", 7, true, 4, 0.1, []int64{3, 4}) }},
		{"float", func() *Canon { return canonWith("E2", 7, true, 2, 0.2, []int64{3, 4}) }},
		{"ints", func() *Canon { return canonWith("E2", 7, true, 2, 0.1, []int64{3, 5}) }},
	}
	for _, f := range flips {
		if f.c().Hash() == ref {
			t.Errorf("flipping %s did not change the hash", f.name)
		}
	}
	if canonWith("E2", 7, true, 2, 0.1, []int64{3, 4}).Hash() != ref {
		t.Error("identical rebuild changed the hash")
	}
}

func canonWith(exp string, seed uint64, quick bool, shards int64, drop float64, params []int64) *Canon {
	var c Canon
	c.PutString("experiment", exp)
	c.PutUint("seed", seed)
	c.PutBool("quick", quick)
	c.PutInt("shards", shards)
	c.PutFloat("fault.drop", drop)
	c.PutInts("algorithm.params", params)
	return &c
}

// TestCanonRejectsMalformedKeys pins the key-hygiene panics: they guard
// the unambiguity of the key=value\n framing.
func TestCanonRejectsMalformedKeys(t *testing.T) {
	for name, put := range map[string]func(c *Canon){
		"empty key":   func(c *Canon) { c.PutString("", "x") },
		"equals key":  func(c *Canon) { c.PutString("a=b", "x") },
		"newline key": func(c *Canon) { c.PutString("a\nb", "x") },
		"newline val": func(c *Canon) { c.PutString("a", "x\ny") },
		"duplicate":   func(c *Canon) { c.PutString("a", "x"); c.PutString("a", "y") },
		"nan float":   func(c *Canon) { c.PutFloat("a", nan()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			var c Canon
			put(&c)
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestCanonEncodeShape pins the literal wire shape: versioned header,
// sorted keys, one pair per line — the format OPERATIONS.md documents
// and operators may diff by hand in the store's canon.txt files.
func TestCanonEncodeShape(t *testing.T) {
	var c Canon
	c.PutString("b", "two")
	c.PutInt("a", 1)
	want := fmt.Sprintf("rlnc-canon/%d\na=1\nb=two\n", CanonVersion)
	if got := string(c.Encode()); got != want {
		t.Fatalf("encoding %q, want %q", got, want)
	}
	if !strings.HasPrefix(want, "rlnc-canon/") {
		t.Fatal("header missing")
	}
}
