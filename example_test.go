package rlnc_test

import (
	"fmt"
	"log"

	"rlnc"
	"rlnc/internal/construct"
	"rlnc/internal/lang"
)

// Example_coloring builds a ring, 3-colors it deterministically, and
// checks membership in the proper-coloring language.
func Example_coloring() {
	g := rlnc.Cycle(32)
	in, err := rlnc.NewInstance(g, make([][]byte, 32), rlnc.RandomIDs(32, 7))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rlnc.RunMessage(in, construct.ColeVishkin{MaxIDBits: 63}, nil, rlnc.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ok, err := rlnc.ProperColoring(3).Contains(&rlnc.Config{G: g, X: in.X, Y: res.Y})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proper 3-coloring:", ok)
	// Output:
	// proper 3-coloring: true
}

// Example_resilientDecider shows the Corollary 1 decider's analytic
// guarantee staying above one half.
func Example_resilientDecider() {
	d := rlnc.NewResilientDecider(rlnc.ProperColoring(3), 4)
	fmt.Printf("guarantee > 1/2: %v\n", d.Guarantee() > 0.5)
	// Output:
	// guarantee > 1/2: true
}

// Example_relaxations contrasts the two relaxations on one configuration.
func Example_relaxations() {
	l := rlnc.ProperColoring(3)
	g := rlnc.Cycle(12)
	y := make([][]byte, 12)
	for v := 0; v < 12; v++ {
		y[v] = lang.EncodeColor(v % 3) // proper except nothing: fully proper
	}
	y[1] = y[0] // plant one conflicted edge: 2 bad balls
	cfg := &rlnc.Config{G: g, X: make([][]byte, 12), Y: y}

	slack := &rlnc.EpsSlack{L: l, Eps: 0.25}
	resil := &rlnc.FResilient{L: l, F: 1}
	okSlack, _ := slack.Contains(cfg)
	okResil, _ := resil.Contains(cfg)
	fmt.Println("within 25% slack:", okSlack)
	fmt.Println("within f=1 resilience:", okResil)
	// Output:
	// within 25% slack: true
	// within f=1 resilience: false
}
