// Package rlnc is the public facade of the Randomized Local Network
// Computing reproduction (Feuilloley & Fraigniaud, SPAA 2015). It
// re-exports the library's main entry points:
//
//   - networks and instances: Graph, Assignment, Instance, Config;
//   - the LOCAL model engine: ViewAlgorithm, MessageAlgorithm, RunView,
//     RunMessage, and the §2.1.1 simulation adapters;
//   - the execution-plan layer: a Plan is the reusable layout of one
//     graph (CSR-flattened adjacency, reverse-port delivery table, cached
//     balls) and an Engine is one worker's reusable execution scratch
//     (double-buffered message slabs, tape slab, assembled views).
//     RunView/RunMessage are single-shot wrappers over this layer;
//     Monte-Carlo trial loops build one Plan per instance and hand each
//     trial-pool worker its own Engine (mc.RunWith), which eliminates
//     steady-state allocations from the trial loop. A Batch is the
//     vectorized worker scratch, and a Sharded runs the message path
//     across a contiguous partition of the plan's CSR layout with
//     per-round cut-block exchange — the multi-machine execution shape,
//     byte-identical to the unsharded engines;
//   - distributed languages: LCL languages via excluded bad balls,
//     global languages (AMOS, Majority), the F_k promise, and the ε-slack
//     / f-resilient relaxations of §1.1 and Definition 1;
//   - deciders: deterministic LD deciders and the randomized BPLD
//     deciders of §2.3 and Corollary 1;
//   - construction algorithms: Cole–Vishkin, Linial reduction, Luby MIS,
//     maximal matching, weak coloring, retry coloring, Moser–Tardos LLL;
//   - the Theorem 1 machinery: boosting parameters, disjoint unions,
//     gluing, order-invariance, and the Ramsey extraction of Appendix A;
//   - fault injection: a FaultPlan is a seeded per-round schedule of
//     message drops/delays, node crashes (with optional recovery), and
//     mid-run edge cuts, armed on any engine shape via SetFault or
//     RunOptions.Fault and implemented once in the shared round core —
//     faulty runs stay deterministic and byte-identical across batch
//     widths, shard counts, and transports;
//   - unified executors: mc.Executor (trial loops), decide.Exec
//     (decision verbs), and construct.Exec (construction runs) each give
//     one options-struct entry point per verb over the engine shapes;
//   - the experiment suite E1–E17 (see DESIGN.md §5 and EXPERIMENTS.md;
//     E17 is the fault-injection degradation study);
//   - the serve control plane: a Server is a long-lived HTTP daemon
//     (job intake, validation against the experiment/algorithm/family
//     registries, one-at-a-time execution, SSE progress) over a
//     content-addressed RunStore — run IDs hash the normalized job's
//     canonical encoding, so identical configurations are answered from
//     the store with zero recompute. `rlnc serve` hosts it; see
//     docs/OPERATIONS.md for the HTTP API.
//
// See examples/ for runnable programs and cmd/rlnc for the CLI.
package rlnc

import (
	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/exp"
	"rlnc/internal/glue"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/orderinv"
	"rlnc/internal/relax"
	"rlnc/internal/report"
	"rlnc/internal/serve"
)

// Network substrate.
type (
	// Graph is a simple undirected network (paper §2.1.1).
	Graph = graph.Graph
	// Ball is the radius-t ball B_G(v,t) with frontier-edge exclusion.
	Ball = graph.Ball
	// Assignment gives every node a distinct positive identity.
	Assignment = ids.Assignment
)

// Graph generators.
var (
	Cycle         = graph.Cycle
	Path          = graph.Path
	Complete      = graph.Complete
	Star          = graph.Star
	Grid          = graph.Grid
	Torus         = graph.Torus
	CompleteTree  = graph.CompleteTree
	Hypercube     = graph.Hypercube
	RandomRegular = graph.RandomRegular
	ConnectedGNP  = graph.ConnectedGNP
)

// Identity assignments.
var (
	ConsecutiveIDs = ids.Consecutive
	RandomIDs      = ids.RandomPerm
)

// Configurations, instances, and promises (paper §2.2).
type (
	Config           = lang.Config
	Instance         = lang.Instance
	DecisionInstance = lang.DecisionInstance
	Language         = lang.Language
	LCL              = lang.LCL
	Fk               = lang.Fk
)

// NewInstance validates and assembles a construction instance (G, x, id).
var NewInstance = lang.NewInstance

// Languages.
var (
	ProperColoring       = lang.ProperColoring
	WeakColoring         = lang.WeakColoring
	MIS                  = lang.MIS
	MaximalMatching      = lang.MaximalMatching
	MinimalDominatingSet = lang.MinimalDominatingSet
	FrugalColoring       = lang.FrugalColoring
	LLL                  = lang.LLL
)

// AMOS is the "at most one selected" language of §2.3.1.
type AMOS = lang.AMOS

// Relaxations (§1.1, Definition 1).
type (
	EpsSlack   = relax.EpsSlack
	FResilient = relax.FResilient
)

// The LOCAL model engine (§2.1).
type (
	View             = local.View
	ViewAlgorithm    = local.ViewAlgorithm
	MessageAlgorithm = local.MessageAlgorithm
	Process          = local.Process
	RunOptions       = local.RunOptions

	// WireAlgorithm/WireProcess are the wire-format message interface:
	// messages as fixed-width 64-bit words staged straight into the
	// engine's send slabs (Inbox to read, Outbox to write), running with
	// zero allocations per round. Process/MessageAlgorithm remain as the
	// boxed legacy transport over the same round loop.
	WireAlgorithm = local.WireAlgorithm
	WireProcess   = local.WireProcess
	Inbox         = local.Inbox
	Outbox        = local.Outbox

	// Plan is the reusable execution layout of one graph: CSR adjacency,
	// the reverse-port delivery table, and the per-radius ball cache.
	// Plans are concurrency-safe and shared by all engines built on them.
	Plan = local.Plan
	// Engine is one worker's reusable execution scratch (message slabs,
	// tapes, assembled views); not safe for concurrent use — trial pools
	// hold one Engine per worker.
	Engine = local.Engine
	// Batch runs a vector of independent trials through one engine pass
	// (structure-of-arrays message slabs, batch-refilled view skeletons),
	// so per-round scheduling and view assembly amortize across the
	// vector; an Engine is the width-1 case. Not safe for concurrent use —
	// trial pools hold one Batch per worker (see mc.RunBatched).
	Batch = local.Batch
	// Sharded runs the message path across a contiguous node partition
	// of the plan's CSR layout: one compacted-window Batch per shard
	// (slabs cover the shard's own slot range plus its remote halo),
	// cross-shard deliveries exchanged per round as contiguous
	// [slot][lane] cut blocks over ShardLinks. Transports: in-process
	// channels (default), framed byte streams over any net.Conn
	// (StreamLink / TCPLoopback), or shard-worker OS processes
	// (WorkerPool + Plan.NewShardedRemote, hosted by `rlnc
	// shard-worker`). Every lane is byte-identical to the unsharded
	// Batch at equal seeds on every transport.
	Sharded   = local.Sharded
	ShardLink = local.ShardLink
	CutBlock  = local.CutBlock
	// TCPLoopback builds ShardLinks as framed byte streams over real
	// loopback TCP sockets — the full serialize → kernel → deserialize
	// path of a deployment, in one process.
	TCPLoopback = local.TCPLoopback
	// WorkerPool is a fixed set of shard-worker processes backing remote
	// sharded executors (Plan.NewShardedRemote); RemoteAlgorithm is the
	// portability hook an algorithm implements to cross the process
	// boundary. Workers register with a versioned hello and heartbeat on
	// the control stream; a dead worker is excluded from the next
	// NewShardedRemote, so Monte-Carlo sweeps retry onto the survivors.
	WorkerPool      = local.WorkerPool
	RemoteAlgorithm = local.RemoteAlgorithm
	// ServeOptions configures a serving shard worker for multi-host
	// deployment: data-listener bind and advertise addresses, heartbeat
	// period, and the die-after-rounds chaos switch used by fault tests.
	ServeOptions = local.ServeOptions
	// ResetProcess is the reset-and-reuse extension of WireProcess:
	// engines pool the per-(node, lane) process table across trials of
	// one algorithm when its processes implement it.
	ResetProcess = local.ResetProcess
	// FaultPlan is the first-class fault model: a seeded schedule of
	// message drops, one-round delays, node crashes (with optional
	// recovery), and mid-run topology surgery (EdgeCut), armed on an
	// Engine, Batch, or Sharded via SetFault or per-run via
	// RunOptions.Fault. Fault decisions come from a dedicated tape keyed
	// by (round, edge slot, lane), so faulty runs are deterministic and
	// byte-identical across every execution shape, including remote
	// shard workers. The zero plan is fault-free and costs nothing.
	FaultPlan = local.FaultPlan
	EdgeCut   = local.EdgeCut
)

var (
	RunView    = local.RunView
	RunMessage = local.RunMessage
	// NewPlan builds (or fetches from the graph's cache) the execution
	// plan of a graph; MustPlan panics on the hand-rolled asymmetric
	// adjacency case that NewPlan reports.
	NewPlan  = local.NewPlan
	MustPlan = local.MustPlan
	// StreamLink wraps byte-stream connections as a ShardLink carrying
	// the framed, versioned CutBlock codec; NewTCPLoopback builds the
	// loopback-TCP LinkFactory; ServeShard turns the current process
	// into one shard of a remote executor (the `rlnc shard-worker`
	// entry point), and NewWorkerPool/NewWorkerConn assemble the
	// orchestrator's side.
	StreamLink              = local.StreamLink
	NewTCPLoopback          = local.NewTCPLoopback
	ServeShard              = local.ServeShard
	ServeShardOpts          = local.ServeShardOpts
	NewWorkerPool           = local.NewWorkerPool
	NewWorkerConn           = local.NewWorkerConn
	RegisterRemoteAlgorithm = local.RegisterRemoteAlgorithm
	// DialRetry dials with bounded exponential backoff — the multi-host
	// helper for control and data-link dials, where start order between
	// orchestrator and workers is deliberately unconstrained.
	DialRetry = local.DialRetry
	// FullInfo turns a radius-t view algorithm into a t-round
	// message-passing algorithm (§2.1.1 simulation).
	FullInfo = local.FullInfo
	// MessageAsView simulates a t-round message algorithm inside a
	// radius-(t+1) ball.
	MessageAsView = local.MessageAsView
	// Boxed strips a WireAlgorithm of its wire fast path, forcing the
	// legacy boxed transport — the baseline the wire benchmarks compare
	// against. NewLegacyProcess adapts one of its processes to the
	// legacy Process interface.
	Boxed            = local.Boxed
	NewLegacyProcess = local.NewLegacyProcess
	// CutForSubdivision performs the Theorem-2-style surgery step: it
	// severs edge {u,z} at the given round and returns the twice-
	// subdivided comparison graph (graph.SubdivideTwice) whose relay
	// nodes stand in for the cut edge.
	CutForSubdivision = local.CutForSubdivision
)

// Randomness: tape spaces model Rand(A) of §3; fixing a draw σ while
// varying another space is the Claim 4 conditioning.
type (
	TapeSpace = localrand.TapeSpace
	Draw      = localrand.Draw
	Tape      = localrand.Tape
)

var NewTapeSpace = localrand.NewTapeSpace

// Deciders (§2.2.1, §2.3).
type (
	Decider          = decide.Decider
	LCLDecider       = decide.LCLDecider
	AMOSDecider      = decide.AMOSDecider
	ResilientDecider = decide.ResilientDecider
)

var (
	Accepts             = decide.Accepts
	AcceptsFarFrom      = decide.AcceptsFarFrom
	NewAMOSDecider      = decide.NewAMOSDecider
	NewResilientDecider = decide.NewResilientDecider
	GoldenP             = decide.GoldenP
	AMOSFooling         = decide.AMOSFooling
)

// Construction algorithms.
type ConstructionAlgorithm = construct.Algorithm

var (
	RandomColoring           = construct.RandomColoring
	ColeVishkinColoring      = construct.ColeVishkinColoring
	LinialColoring           = construct.LinialColoring
	LubyMISAlgorithm         = construct.LubyMISAlgorithm
	MaximalMatchingAlgorithm = construct.MaximalMatchingAlgorithm
	WeakColoringViaMIS       = construct.WeakColoringViaMIS
	MoserTardosAlgorithm     = construct.MoserTardosAlgorithm
)

// RetryColoring is the t-round conflict-resampling coloring of §1.1.
type RetryColoring = construct.RetryColoring

// Theorem 1 machinery.
var (
	Mu                 = glue.Mu
	NuDisjoint         = glue.NuDisjoint
	NuPrimeSearch      = glue.NuPrimeSearch
	BuildGlued         = glue.BuildGlued
	BuildDisjointUnion = glue.BuildDisjointUnion
)

// Order-invariance and the Appendix A extraction.
type OrderInvariantSimulation = orderinv.Simulation

var (
	CheckInvariance = orderinv.CheckInvariance
	RingInventory   = orderinv.RingInventory
	RamseyExtract   = orderinv.Extract
)

// Unified executors: one options-struct entry point per verb, each
// dispatching over the engine shapes (and each carrying the fault axis).
type (
	// Executor runs Monte-Carlo trial loops: Trials/Batch/Shards/Fault
	// options, Run for success estimates, Mean for scalar averages.
	Executor[S any] = mc.Executor[S]
	// MCEstimate is a Monte-Carlo success estimate with Wilson bounds.
	MCEstimate = mc.Estimate
	// DecideExec evaluates deciders: Verdicts, Accepts, AcceptsFarFrom
	// over trial vectors on an engine, a batch, or transiently.
	DecideExec = decide.Exec
	// ConstructExec runs construction algorithms: Run and RunInstances
	// over an engine, a batch, or a sharded executor.
	ConstructExec = construct.Exec
)

// Experiments.
type (
	Experiment       = report.Experiment
	ExperimentConfig = report.Config
	ExperimentResult = report.Result
)

// Experiments returns the registered suite E1–E17 in order.
func Experiments() []report.Experiment { return exp.All() }

// ExperimentByID looks up one experiment (e.g. "E5").
func ExperimentByID(id string) (report.Experiment, bool) { return report.ByID(id) }

// The serve control plane (hosted by `rlnc serve`; HTTP API in
// docs/OPERATIONS.md). Named Server/ServerOptions — not ServeOptions,
// which is the shard-worker serving configuration above.
type (
	// Server is the long-lived experiment daemon: an http.Handler
	// accepting jobs at POST /v1/runs, executing them one at a time on
	// the Monte-Carlo harness, streaming SSE progress, and answering
	// repeated configurations from the content-addressed run store.
	Server = serve.Server
	// ServerOptions configures a Server: the backing store, validation
	// limits, queue depth, and the sharded-executor provider that routes
	// jobs onto a worker fleet.
	ServerOptions = serve.Options
	// JobSpec is one submitted run configuration — an experiment by
	// registry ID or an algorithm by key plus graph family — whose
	// normalized canonical encoding hashes to the run ID.
	JobSpec = serve.JobSpec
	// RunStore is the flat-file content-addressed store of finished
	// runs; RunMeta is one run's stored metadata.
	RunStore = serve.Store
	RunMeta  = serve.RunMeta
)

var (
	// NewServer builds a Server over a store; OpenRunStore opens (or
	// creates) a store rooted at a directory.
	NewServer    = serve.NewServer
	OpenRunStore = serve.OpenStore
)
