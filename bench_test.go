package rlnc

import (
	"fmt"
	"testing"

	"rlnc/internal/construct"
	"rlnc/internal/decide"
	"rlnc/internal/exp"
	"rlnc/internal/glue"
	"rlnc/internal/graph"
	"rlnc/internal/ids"
	"rlnc/internal/lang"
	"rlnc/internal/linial"
	"rlnc/internal/local"
	"rlnc/internal/localrand"
	"rlnc/internal/mc"
	"rlnc/internal/report"
)

// One benchmark per experiment: the harness that regenerates every table
// of EXPERIMENTS.md (quick mode; run `rlnc run all` for the full tables).
func benchExperiment(b *testing.B, id string) {
	e, ok := report.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(report.Config{Quick: true, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllChecksPass() {
			for _, c := range res.Checks {
				if !c.OK {
					b.Fatalf("%s check failed: %s — %s", id, c.Name, c.Detail)
				}
			}
		}
	}
}

func BenchmarkExpE1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkExpE2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkExpE3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkExpE4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkExpE5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkExpE6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkExpE7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkExpE8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkExpE9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkExpE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkExpE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkExpE12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkExpE13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkExpE14(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkExpE15(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkExpE16(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkExpE17(b *testing.B) { benchExperiment(b, "E17") }

// Substrate micro-benchmarks.

// BenchmarkRoundEngine measures the synchronous round engine: nodes ×
// rounds throughput of a flooding algorithm on a ring.
func BenchmarkRoundEngine(b *testing.B) {
	n := 1024
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	algo := local.FullInfo(local.ViewFunc{
		AlgoName: "probe", R: 4,
		F: func(v *local.View) []byte { return []byte{byte(v.Ball.Size())} },
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, algo, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*4), "node-rounds/op")
}

// benchTrialFixture builds the fixed Monte-Carlo trial setup shared by
// the engine-reuse benchmarks: a ring instance, a radius-1 randomized
// coloring in ball-view form, and the canonical LCL decider.
func benchTrialFixture(b *testing.B) (*lang.Instance, local.ViewAlgorithm, *decide.LCLDecider) {
	n := 512
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	algo := local.ViewFunc{AlgoName: "random-3-color", R: 1, F: func(v *local.View) []byte {
		return lang.EncodeColor(v.Tape().Intn(3))
	}}
	return in, algo, &decide.LCLDecider{L: lang.ProperColoring(3)}
}

// benchTrial runs one construction+decision Monte-Carlo trial, pooled or
// single-shot.
func benchTrial(in *lang.Instance, algo local.ViewAlgorithm, d *decide.LCLDecider, eng *local.Engine, draw localrand.Draw) ([][]byte, bool) {
	var y [][]byte
	if eng != nil {
		y = eng.RunView(in, algo, &draw)
	} else {
		y = local.RunView(in, algo, &draw)
	}
	di := &lang.DecisionInstance{G: in.G, X: in.X, Y: y, ID: in.ID}
	if eng != nil {
		return y, decide.AcceptsWith(eng, di, d, nil)
	}
	return y, decide.Accepts(di, d, nil)
}

// BenchmarkTrialSingleShot measures the per-trial cost of the
// single-shot path: every iteration re-extracts balls and reassembles
// views, as all trial loops did before the Plan/Engine layer.
func BenchmarkTrialSingleShot(b *testing.B) {
	in, algo, d := benchTrialFixture(b)
	space := localrand.NewTapeSpace(17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrial(in, algo, d, nil, space.Draw(uint64(i)))
	}
}

// BenchmarkTrialPooledEngine is the identical trial on one reusable
// Engine — the acceptance benchmark of the Plan/Engine PR: repeated
// executions on a fixed graph must show ≥ 40% fewer allocs/op than
// BenchmarkTrialSingleShot, with identical outputs (verified below and
// pinned exhaustively by internal/local/plan_test.go).
func BenchmarkTrialPooledEngine(b *testing.B) {
	in, algo, d := benchTrialFixture(b)
	space := localrand.NewTapeSpace(17)
	plan := local.MustPlan(in.G)
	eng := plan.NewEngine()
	// Verify pooled and single-shot trials agree before timing.
	yp, ap := benchTrial(in, algo, d, eng, space.Draw(0))
	ys, as := benchTrial(in, algo, d, nil, space.Draw(0))
	if ap != as {
		b.Fatal("pooled and single-shot verdicts differ")
	}
	for v := range ys {
		if string(yp[v]) != string(ys[v]) {
			b.Fatalf("node %d: pooled output differs from single-shot", v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTrial(in, algo, d, eng, space.Draw(uint64(i)))
	}
}

// benchTrialBatched is the identical construction+decision trial run in
// vectors of `width` lanes through one Batch — the acceptance benchmark
// of the batched-execution PR: at width ≥ 32 it must show ≥ 2× trials/sec
// over BenchmarkTrialPooledEngine, with outputs byte-identical to the
// pooled engine at equal seeds (verified below before timing and pinned
// exhaustively by internal/local/batch_test.go). Reported time/op is per
// trial, so the ratio against the pooled benchmark is the throughput gain.
func benchTrialBatched(b *testing.B, width int) {
	in, algo, d := benchTrialFixture(b)
	space := localrand.NewTapeSpace(17)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	eng := plan.NewEngine()
	dx := decide.Exec{Bt: bt, Mem: &decide.Mem{}}
	draws := make([]localrand.Draw, width)
	// The lane decision instances are reused across passes — only the
	// candidate-output column varies per trial — so the steady-state
	// loop allocates nothing at all.
	dis := make([]*lang.DecisionInstance, width)
	for i := range dis {
		dis[i] = &lang.DecisionInstance{G: in.G, X: in.X, ID: in.ID}
	}

	// Verify batched and pooled trials agree before timing.
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}
	ys, err := bt.RunView(in, algo, draws)
	if err != nil {
		b.Fatal(err)
	}
	for i := range draws {
		dis[i].Y = ys[i]
	}
	accs := dx.Accepts(dis, d, nil)
	for i := range draws {
		yp, ap := benchTrial(in, algo, d, eng, space.Draw(uint64(i)))
		if ap != accs[i] {
			b.Fatalf("lane %d: batched and pooled verdicts differ", i)
		}
		for v := range yp {
			if string(yp[v]) != string(ys[i][v]) {
				b.Fatalf("lane %d node %d: batched output differs from pooled", i, v)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		ys, err := bt.RunView(in, algo, draws[:k])
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < k; j++ {
			dis[j].Y = ys[j]
		}
		dx.Accepts(dis[:k], d, nil)
	}
}

func BenchmarkTrialBatched8(b *testing.B)   { benchTrialBatched(b, 8) }
func BenchmarkTrialBatched32(b *testing.B)  { benchTrialBatched(b, 32) }
func BenchmarkTrialBatched128(b *testing.B) { benchTrialBatched(b, 128) }

// BenchmarkTrialBatchedMessage runs the message-path trial (retry
// coloring) in vectors of 32, against BenchmarkTrialPooledMessage below —
// the round-loop amortization, separate from the view-path one.
func BenchmarkTrialBatchedMessage(b *testing.B) {
	const width = 32
	in, _, _ := benchTrialFixture(b)
	algo := construct.RetryColoring{Q: 3, T: 2}
	space := localrand.NewTapeSpace(19)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	draws := make([]localrand.Draw, width)
	// One warm-up vector before the timer, so the first iteration's
	// one-time slab and process-table growth does not smear the
	// steady-state profile the benchcmp gate compares.
	for j := 0; j < width; j++ {
		draws[j] = space.Draw(uint64(j))
	}
	if _, err := construct.RunBatch(algo, bt, in, draws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if _, err := construct.RunBatch(algo, bt, in, draws[:k]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialBatchedMessageScalar is BenchmarkTrialBatchedMessage
// with the lane-vectorized fast path stripped (local.ScalarOnly): the
// same retry-coloring vectors stepped one lane at a time through scalar
// WireProcesses. The BatchedMessage/BatchedMessageScalar ratio is the
// speedup of the SoA stepping seam alone, at byte-identical outputs
// (pinned by internal/shardtest's vec differential matrix).
func BenchmarkTrialBatchedMessageScalar(b *testing.B) {
	const width = 32
	in, _, _ := benchTrialFixture(b)
	algo := construct.MessageConstruction{Algo: local.ScalarOnly(construct.RetryMessage(3, 2))}
	space := localrand.NewTapeSpace(19)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	draws := make([]localrand.Draw, width)
	for j := 0; j < width; j++ {
		draws[j] = space.Draw(uint64(j))
	}
	if _, err := construct.RunBatch(algo, bt, in, draws); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if _, err := construct.RunBatch(algo, bt, in, draws[:k]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStepPath measures one algorithm's per-trial stepping cost at
// width 32, vectorized (the SoA StepVec path) or scalar (ScalarOnly).
// Each Benchmark{Step*}{Scalar,Vec} pair isolates one migrated
// algorithm's kernel, so a regression in a single StepVec shows up in
// its own pair instead of being averaged into the trial benchmarks.
// Both sides are asserted byte-identical before timing.
func benchStepPath(b *testing.B, wa local.MessageAlgorithm, in *lang.Instance, random, scalar bool) {
	const width = 32
	algo := wa
	if scalar {
		algo = local.ScalarOnly(wa)
	}
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	space := localrand.NewTapeSpace(29)
	sclBt := plan.NewBatch(width)
	ins := make([]*lang.Instance, width)
	for i := range ins {
		ins[i] = in
	}
	run := func(bt *local.Batch, a local.MessageAlgorithm, draws []localrand.Draw) []*local.Result {
		var res []*local.Result
		var err error
		if random {
			res, err = bt.Run(in, a, draws, local.RunOptions{})
		} else {
			res, err = bt.RunInstances(ins[:len(ins)], a, nil, local.RunOptions{})
		}
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	draws := make([]localrand.Draw, width)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}
	got := run(bt, algo, draws)
	want := run(sclBt, local.ScalarOnly(wa), draws)
	for i := range want {
		if want[i].Stats != got[i].Stats {
			b.Fatalf("lane %d: Stats %+v, want %+v", i, got[i].Stats, want[i].Stats)
		}
		for v := range want[i].Y {
			if string(want[i].Y[v]) != string(got[i].Y[v]) {
				b.Fatalf("lane %d node %d: output differs from scalar reference", i, v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if random {
			if _, err := bt.Run(in, algo, draws[:k], local.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := bt.RunInstances(ins[:k], algo, nil, local.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// stepLubyIn/stepRetryIn/stepCVIn build the fixed per-algorithm
// stepping fixtures: Luby on the 4-regular workhorse graph, retry
// coloring on the ring, Cole–Vishkin on the oriented ring.
func stepLubyIn(b *testing.B) *lang.Instance {
	in, _, _ := benchMessageFixture(b)
	return in
}

func stepRingIn(b *testing.B) *lang.Instance {
	n := 512
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkStepLubyScalar(b *testing.B) {
	benchStepPath(b, construct.LubyMIS{}, stepLubyIn(b), true, true)
}
func BenchmarkStepLubyVec(b *testing.B) {
	benchStepPath(b, construct.LubyMIS{}, stepLubyIn(b), true, false)
}
func BenchmarkStepRetryScalar(b *testing.B) {
	benchStepPath(b, construct.RetryMessage(3, 2), stepRingIn(b), true, true)
}
func BenchmarkStepRetryVec(b *testing.B) {
	benchStepPath(b, construct.RetryMessage(3, 2), stepRingIn(b), true, false)
}
func BenchmarkStepCVScalar(b *testing.B) {
	benchStepPath(b, construct.ColeVishkin{MaxIDBits: 63}, stepRingIn(b), false, true)
}
func BenchmarkStepCVVec(b *testing.B) {
	benchStepPath(b, construct.ColeVishkin{MaxIDBits: 63}, stepRingIn(b), false, false)
}

// benchTrialFaulty is BenchmarkTrialBatchedMessage with a FaultPlan
// armed on the batch: the 0.05-drop plan measures the cost of the fault
// round path (per-slot tape draws plus suppressed deliveries), and the
// zero plan pins the disarm contract — an armed-but-empty plan must
// stay within noise of the fault-free benchmark, because the round loop
// never enters the fault path.
func benchTrialFaulty(b *testing.B, fp *local.FaultPlan) {
	const width = 32
	in, _, _ := benchTrialFixture(b)
	algo := construct.RetryColoring{Q: 3, T: 2}
	space := localrand.NewTapeSpace(19)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	bt.SetFault(fp)
	draws := make([]localrand.Draw, width)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if _, err := construct.RunBatch(algo, bt, in, draws[:k]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialFaulty32(b *testing.B) {
	benchTrialFaulty(b, &local.FaultPlan{Seed: 23, Drop: 0.05})
}

func BenchmarkTrialFaultyZeroPlan32(b *testing.B) {
	benchTrialFaulty(b, &local.FaultPlan{Seed: 23})
}

// benchTrialSharded runs the message-path trial of
// BenchmarkTrialBatchedMessage through a sharded executor: the same
// retry-coloring vectors, cut into `shards` node ranges with per-round
// cut exchange over in-process links. Outputs are byte-identical to the
// batched run (asserted before timing; pinned exhaustively by
// internal/shardtest), so the sharded/batched time ratio is the
// orchestration + exchange overhead a single machine pays to exercise
// the multi-machine execution path.
func benchTrialSharded(b *testing.B, shards int) {
	const width = 32
	in, _, _ := benchTrialFixture(b)
	algo := construct.RetryColoring{Q: 3, T: 2}
	space := localrand.NewTapeSpace(19)
	plan := local.MustPlan(in.G)
	sh, err := plan.NewSharded(width, shards)
	if err != nil {
		b.Fatal(err)
	}
	bt := plan.NewBatch(width)
	draws := make([]localrand.Draw, width)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}
	want, err := construct.RunBatch(algo, bt, in, draws)
	if err != nil {
		b.Fatal(err)
	}
	got, err := construct.RunSharded(algo, sh, in, draws)
	if err != nil {
		b.Fatal(err)
	}
	for i := range draws {
		for v := range want[i] {
			if string(want[i][v]) != string(got[i][v]) {
				b.Fatalf("lane %d node %d: sharded output differs from batched", i, v)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if _, err := construct.RunSharded(algo, sh, in, draws[:k]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrialSharded2(b *testing.B) { benchTrialSharded(b, 2) }
func BenchmarkTrialSharded4(b *testing.B) { benchTrialSharded(b, 4) }

// BenchmarkTrialPooledMessage is the pooled-engine baseline of
// BenchmarkTrialBatchedMessage.
func BenchmarkTrialPooledMessage(b *testing.B) {
	in, _, _ := benchTrialFixture(b)
	algo := construct.RetryColoring{Q: 3, T: 2}
	space := localrand.NewTapeSpace(19)
	plan := local.MustPlan(in.G)
	eng := plan.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		draw := space.Draw(uint64(i))
		if _, err := construct.RunOn(algo, eng, in, &draw); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMessageFixture builds the message-path fixture of the wire-format
// benchmarks: Luby's MIS (two-word value messages, zero-word join
// signals) on a 4-regular graph — the §4 construction workhorse shape.
func benchMessageFixture(b *testing.B) (*lang.Instance, construct.LubyMIS, *localrand.TapeSpace) {
	g, err := graph.RandomRegular(512, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), ids.Consecutive(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	return in, construct.LubyMIS{}, localrand.NewTapeSpace(23)
}

// benchMessagePath measures one trial of a message algorithm per draw,
// run `width` lanes at a time through a Batch (width 1 = pooled Engine
// shape). Reported time/op is per trial. The boxed variant runs the very
// same algorithm through local.Boxed — the legacy []Message transport —
// after asserting byte-identical outputs and Stats at equal seeds, so
// the wire/boxed ratio is the speedup of the wire message core alone.
func benchMessagePath(b *testing.B, width int, boxed bool) {
	in, wa, space := benchMessageFixture(b)
	plan := local.MustPlan(in.G)
	bt := plan.NewBatch(width)
	var algo local.MessageAlgorithm = wa
	if boxed {
		algo = local.Boxed(wa)
	}

	// Equivalence gate: every lane of the boxed and wire paths must agree
	// byte for byte, Stats included, before either is timed.
	draws := make([]localrand.Draw, width)
	for i := range draws {
		draws[i] = space.Draw(uint64(i))
	}
	wireRes, err := bt.Run(in, wa, draws, local.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	boxedRes, err := bt.Run(in, local.Boxed(wa), draws, local.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range draws {
		if wireRes[i].Stats != boxedRes[i].Stats {
			b.Fatalf("lane %d: wire Stats %+v != boxed Stats %+v", i, wireRes[i].Stats, boxedRes[i].Stats)
		}
		for v := range wireRes[i].Y {
			if string(wireRes[i].Y[v]) != string(boxedRes[i].Y[v]) {
				b.Fatalf("lane %d node %d: wire output differs from boxed", i, v)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += width {
		k := width
		if left := b.N - done; left < k {
			k = left
		}
		for j := 0; j < k; j++ {
			draws[j] = space.Draw(uint64(done + j))
		}
		if _, err := bt.Run(in, algo, draws[:k], local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageWire{1,32} vs BenchmarkMessageBoxed{1,32}: the
// acceptance pair of the wire-format PR — at width 32 the wire path must
// show ≥ 1.5× trials/sec over the boxed path on the same graph at
// byte-identical outputs and Stats (asserted above before timing).
func BenchmarkMessageWire1(b *testing.B)   { benchMessagePath(b, 1, false) }
func BenchmarkMessageWire32(b *testing.B)  { benchMessagePath(b, 32, false) }
func BenchmarkMessageBoxed1(b *testing.B)  { benchMessagePath(b, 1, true) }
func BenchmarkMessageBoxed32(b *testing.B) { benchMessagePath(b, 32, true) }

// BenchmarkMessageEngineReuse measures the message-passing engine with
// slab reuse (compare BenchmarkRoundEngine, which is single-shot).
func BenchmarkMessageEngineReuse(b *testing.B) {
	n := 1024
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	algo := local.FullInfo(local.ViewFunc{
		AlgoName: "probe", R: 4,
		F: func(v *local.View) []byte { return []byte{byte(v.Ball.Size())} },
	})
	plan := local.MustPlan(in.G)
	eng := plan.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(in, algo, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*4), "node-rounds/op")
}

// BenchmarkBallExtraction measures B_G(v,t) extraction on a torus.
func BenchmarkBallExtraction(b *testing.B) {
	g := graph.Torus(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BallAround(i%g.N(), 3)
	}
}

// BenchmarkColeVishkin measures the full log*-round 3-coloring.
func BenchmarkColeVishkin(b *testing.B) {
	n := 4096
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.RandomPerm(n, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, construct.ColeVishkin{MaxIDBits: 63}, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLubyMIS measures randomized MIS on a 4-regular graph.
func BenchmarkLubyMIS(b *testing.B) {
	g, err := graph.RandomRegular(512, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, err := lang.NewInstance(g, lang.EmptyInputs(g.N()), ids.Consecutive(g.N()))
	if err != nil {
		b.Fatal(err)
	}
	space := localrand.NewTapeSpace(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		draw := space.Draw(uint64(i))
		if _, err := construct.LubyMISAlgorithm().Run(in, &draw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLCLDecide measures the canonical decider on a planted ring.
func BenchmarkLCLDecide(b *testing.B) {
	n := 4096 // even: the alternating 2-coloring is proper around the wrap
	l := lang.ProperColoring(3)
	y := make([][]byte, n)
	for v := 0; v < n; v++ {
		y[v] = lang.EncodeColor(v % 2)
	}
	di := &lang.DecisionInstance{G: graph.Cycle(n), X: lang.EmptyInputs(n), Y: y, ID: ids.Consecutive(n)}
	d := &decide.LCLDecider{L: l}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !decide.Accepts(di, d, nil) {
			b.Fatal("proper coloring rejected")
		}
	}
}

// BenchmarkGluing measures the Theorem 1 surgery on 8 blocks.
func BenchmarkGluing(b *testing.B) {
	parts := make([]*lang.Instance, 8)
	start := int64(1)
	for i := range parts {
		in, err := lang.NewInstance(graph.Cycle(64), lang.EmptyInputs(64), ids.ConsecutiveFrom(64, start))
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = in
		start += 64
	}
	anchors := make([]glue.Anchor, len(parts))
	for i := range anchors {
		anchors[i] = glue.Anchor{Node: i * 7, Port: 0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := glue.BuildGlued(parts, anchors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the trial harness itself.
func BenchmarkMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		est := mc.Run(10000, func(trial int) bool {
			return localrand.NewSource(uint64(trial)).Float64() < 0.618
		})
		if est.Trials != 10000 {
			b.Fatal("trial miscount")
		}
	}
}

// BenchmarkPatternGraph measures the order-pattern graph construction
// (radius 2: 120 patterns).
func BenchmarkPatternGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pg := linial.BuildPatternGraph(2)
		if !pg.HasSelfLoopAtMonotone() {
			b.Fatal("self-loop missing")
		}
	}
}

// BenchmarkColorability measures the exact solver on the Petersen graph.
func BenchmarkColorability(b *testing.B) {
	g := graph.Petersen()
	for i := 0; i < b.N; i++ {
		ok, _, err := linial.Colorable(g, 3, 0)
		if err != nil || !ok {
			b.Fatal("Petersen should be 3-colorable")
		}
	}
}

// BenchmarkCanonicalKey measures exact ball canonicalization.
func BenchmarkCanonicalKey(b *testing.B) {
	ball := graph.Cycle(16).BallAround(0, 3)
	for i := 0; i < b.N; i++ {
		if _, err := ball.CanonicalKey(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullInfoAdapter measures the §2.1.1 gossip simulation.
func BenchmarkFullInfoAdapter(b *testing.B) {
	n := 256
	in, err := lang.NewInstance(graph.Cycle(n), lang.EmptyInputs(n), ids.Consecutive(n))
	if err != nil {
		b.Fatal(err)
	}
	view := local.ViewFunc{AlgoName: "size", R: 3, F: func(v *local.View) []byte { return []byte{byte(v.Ball.Size())} }}
	algo := local.FullInfo(view)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(in, algo, nil, local.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFacadeSmoke exercises the re-exported API end to end.
func TestFacadeSmoke(t *testing.T) {
	g := Cycle(12)
	in, err := NewInstance(g, make([][]byte, 12), ConsecutiveIDs(12))
	if err != nil {
		t.Fatal(err)
	}
	y := RunView(in, local.ViewFunc{AlgoName: "zero", R: 0, F: func(v *View) []byte {
		return lang.EncodeColor(0)
	}}, nil)
	if len(y) != 12 {
		t.Fatal("facade RunView broken")
	}
	var plan *Plan = MustPlan(g)
	var eng *Engine = plan.NewEngine()
	if res, err := eng.Run(in, local.FullInfo(local.ViewFunc{AlgoName: "zero", R: 0, F: func(v *View) []byte {
		return lang.EncodeColor(0)
	}}), nil, RunOptions{}); err != nil || len(res.Y) != 12 {
		t.Fatalf("facade Plan/Engine broken: %v", err)
	}
	if len(Experiments()) != 17 {
		t.Fatalf("facade lists %d experiments", len(Experiments()))
	}
	if _, ok := ExperimentByID("E7"); !ok {
		t.Fatal("facade lookup broken")
	}
	if p := GoldenP; p < 0.61 || p > 0.62 {
		t.Fatalf("GoldenP = %v", p)
	}
	_ = fmt.Sprintf("%v", exp.All())
}
